#pragma once

#include <span>

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/routing.hpp"
#include "network/topology.hpp"
#include "sched/schedule.hpp"

/// \file assignment.hpp
/// Build a complete contention-aware schedule from a bare task→processor
/// assignment.
///
/// Tasks are list-scheduled in descending nominal b-level (ties by id)
/// onto their assigned processors with insertion-based slot search;
/// crossing messages are routed along shortest paths and booked into
/// exclusive link slots. This turns *any* mapping — produced by a
/// partitioner, a metaheuristic, or a human — into a feasible schedule
/// whose length can be compared against BSA/DLS, and is the evaluation
/// engine behind core::refine_schedule.

namespace bsa::sched {

/// `assignment[t]` is the processor of task t (all entries valid).
/// The returned schedule is complete and valid.
[[nodiscard]] Schedule schedule_from_assignment(
    const graph::TaskGraph& g, const net::Topology& topo,
    const net::HeterogeneousCostModel& costs,
    std::span<const ProcId> assignment, const net::RoutingTable& table);

/// Convenience overload constructing the routing table internally.
[[nodiscard]] Schedule schedule_from_assignment(
    const graph::TaskGraph& g, const net::Topology& topo,
    const net::HeterogeneousCostModel& costs,
    std::span<const ProcId> assignment);

/// Extract the assignment vector of an existing complete schedule.
[[nodiscard]] std::vector<ProcId> assignment_of(const Schedule& s);

}  // namespace bsa::sched
