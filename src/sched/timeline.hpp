#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

/// \file timeline.hpp
/// Interval arithmetic for exclusive resources (processors and links).
///
/// Both schedulers use *insertion-based* slot search: a new task/message
/// may occupy any idle gap of sufficient length, not just the tail of the
/// timeline. This is the behaviour the paper attributes to BSA ("messages
/// are incrementally scheduled to suitable slots").

namespace bsa::sched {

/// Half-open busy interval [start, finish).
struct Interval {
  Time start = 0;
  Time finish = 0;
};

/// True when [a) and [b) overlap by more than the time tolerance.
[[nodiscard]] bool intervals_overlap(const Interval& a, const Interval& b) noexcept;

/// Earliest start >= ready such that [start, start+duration) does not
/// overlap any busy interval. `busy` must be sorted by start and mutually
/// non-overlapping. Zero-duration requests return max(ready, 0).
[[nodiscard]] Time earliest_fit(std::span<const Interval> busy, Time ready,
                                Time duration);

/// Insert `iv` into a sorted non-overlapping interval vector, keeping it
/// sorted. Throws InvariantError if `iv` overlaps an existing interval.
void insert_interval(std::vector<Interval>& busy, const Interval& iv);

/// Merge two sorted non-overlapping interval lists into one sorted list.
/// The result may contain touching intervals but callers guarantee no
/// overlaps between the inputs.
[[nodiscard]] std::vector<Interval> merge_busy(std::span<const Interval> a,
                                               std::span<const Interval> b);

/// True when `busy` is sorted by start and mutually non-overlapping.
[[nodiscard]] bool is_well_formed(std::span<const Interval> busy) noexcept;

}  // namespace bsa::sched
