#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

/// \file timeline.hpp
/// Interval arithmetic for exclusive resources (processors and links).
///
/// Both schedulers use *insertion-based* slot search: a new task/message
/// may occupy any idle gap of sufficient length, not just the tail of the
/// timeline. This is the behaviour the paper attributes to BSA ("messages
/// are incrementally scheduled to suitable slots").

namespace bsa::sched {

/// Half-open busy interval [start, finish).
struct Interval {
  Time start = 0;
  Time finish = 0;
};

/// True when [a) and [b) overlap by more than the time tolerance.
[[nodiscard]] bool intervals_overlap(const Interval& a, const Interval& b) noexcept;

/// Earliest start >= ready such that [start, start+duration) does not
/// overlap any busy interval. `busy` must be sorted by start and mutually
/// non-overlapping. Zero-duration requests return max(ready, 0).
[[nodiscard]] Time earliest_fit(std::span<const Interval> busy, Time ready,
                                Time duration);

/// Insert `iv` into a sorted non-overlapping interval vector, keeping it
/// sorted. Throws InvariantError if `iv` overlaps an existing interval.
void insert_interval(std::vector<Interval>& busy, const Interval& iv);

/// Merge two sorted non-overlapping interval lists into one sorted list.
/// The result may contain touching intervals but callers guarantee no
/// overlaps between the inputs.
[[nodiscard]] std::vector<Interval> merge_busy(std::span<const Interval> a,
                                               std::span<const Interval> b);

/// True when `busy` is sorted by start and mutually non-overlapping.
[[nodiscard]] bool is_well_formed(std::span<const Interval> busy) noexcept;

/// Free-slot index over one resource timeline.
///
/// `earliest_fit` answers a slot query with a linear scan over the busy
/// intervals — O(k) per query. SlotIndex preprocesses the same sorted
/// interval list into gap records (gap j sits before busy[j]; its left
/// edge is the running maximum of earlier finishes, exactly the
/// `candidate` of the linear scan) plus a segment tree over gap
/// capacities, so each query runs in O(log k): one binary search for the
/// gaps still left of `ready` and one leftmost-fitting-leaf descent for
/// the gaps beyond it. Answers are bit-identical to `earliest_fit` — the
/// tree only prunes (with a small epsilon/ulp slack) and every candidate
/// gap is re-checked with the scan's exact floating-point predicate.
///
/// Build is O(k); the index is immutable — rebuild after the timeline
/// changes (Schedule caches one per processor/link behind a dirty flag).
class SlotIndex {
 public:
  /// Index `busy` (sorted by start, mutually non-overlapping).
  void build(std::span<const Interval> busy);
  void reset() noexcept;
  [[nodiscard]] bool built() const noexcept { return built_; }

  /// Churn heuristic: counts queries that arrived while the index was
  /// unbuilt, cleared on reset(). A resource that is invalidated between
  /// almost every query (the replay engine's pattern) never repays an
  /// O(k) build — its owner answers the first few post-invalidation
  /// queries with a linear earliest_fit scan (bit-identical by
  /// definition) and only builds once the resource proves hot.
  [[nodiscard]] int note_unbuilt_query() noexcept { return ++unbuilt_queries_; }

  /// Earliest start >= ready of an idle gap of `duration`; identical to
  /// sched::earliest_fit over the indexed intervals.
  [[nodiscard]] Time query(Time ready, Time duration) const;

 private:
  [[nodiscard]] int descend(int node, int lo, int hi, int from,
                            Time min_cap) const;

  std::vector<Time> gap_end_;   // gap j right edge = busy[j].start
  std::vector<Time> gap_open_;  // gap j left edge = max finish of busy[0..j)
  std::vector<Time> seg_;       // max (gap_end - gap_open) per tree node
  int n_ = 0;                   // number of busy intervals (== gap count)
  Time tail_open_ = 0;          // max finish over all intervals
  bool built_ = false;
  int unbuilt_queries_ = 0;     // queries since reset while unbuilt
};

}  // namespace bsa::sched
