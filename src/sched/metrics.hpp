#pragma once

#include "common/types.hpp"
#include "network/cost_model.hpp"
#include "sched/schedule.hpp"

/// \file metrics.hpp
/// Quality metrics beyond the schedule length, used by benches and
/// examples to explain *why* one schedule beats another (e.g. link
/// contention pressure at fine granularity).

namespace bsa::sched {

struct ScheduleMetrics {
  Time makespan = 0;
  int num_crossing_messages = 0;  ///< messages with a non-empty route
  int total_hops = 0;             ///< sum of route lengths
  Time total_link_busy = 0;       ///< sum of hop durations over all links
  double avg_proc_utilization = 0;  ///< busy time / (makespan * m)
  double max_link_utilization = 0;  ///< busiest link's busy / makespan
  double avg_link_utilization = 0;
  /// Longest chain of exec costs using each task's fastest processor and
  /// zero communication — a lower bound on any schedule length.
  Time lower_bound = 0;
  /// Best single-processor schedule length (min over processors of the
  /// total execution cost there) — the paper's serialization start point
  /// optimum.
  Time best_serial = 0;
  /// best_serial / makespan — parallel speedup against the best serial
  /// schedule.
  double speedup = 0;
  /// makespan / lower_bound — normalised schedule length (SLR >= 1).
  double slr = 0;
};

/// Compute metrics for a complete schedule.
[[nodiscard]] ScheduleMetrics compute_metrics(
    const Schedule& s, const net::HeterogeneousCostModel& costs);

/// The fastest-processor zero-communication critical path — a simple
/// schedule-length lower bound valid for every algorithm.
[[nodiscard]] Time schedule_length_lower_bound(
    const graph::TaskGraph& g, const net::HeterogeneousCostModel& costs);

}  // namespace bsa::sched
