#include "sched/scheduler.hpp"

#include <atomic>

#include "common/check.hpp"
#include "common/spec.hpp"
#include "obs/trace.hpp"
#include "sched/validate.hpp"

namespace bsa::sched {

namespace {

#ifdef BSA_AUDIT
constexpr bool kAuditDefault = true;
#else
constexpr bool kAuditDefault = false;
#endif

std::atomic<bool> g_audit{kAuditDefault};

}  // namespace

void set_audit(bool on) noexcept {
  g_audit.store(on, std::memory_order_relaxed);
}

bool audit_enabled() noexcept {
  return g_audit.load(std::memory_order_relaxed);
}

void audit_result(const Schedule& s, const net::HeterogeneousCostModel& costs,
                  const std::string& label) {
  if (!audit_enabled()) return;
  const ValidationReport report = validate(s, costs);
  if (!report.ok()) {
    throw InvariantError("audit: scheduler '" + label +
                         "' produced an invalid schedule:\n" +
                         report.to_string());
  }
}

std::string Scheduler::display_label() const {
  const std::string canonical = spec();
  return canonical.find(':') == std::string::npos ? display_name()
                                                  : canonical;
}

SchedulerResult Scheduler::run_observed(const graph::TaskGraph& g,
                                        const net::Topology& topo,
                                        const net::HeterogeneousCostModel& costs,
                                        std::uint64_t seed,
                                        const obs::Hooks& hooks) const {
  obs::Span span(hooks.tracer, spec(), "sched", hooks.trace_tid);
  return run(g, topo, costs, seed);
}

// --- SchedulerRegistry ------------------------------------------------------

void SchedulerRegistry::add(Entry entry) {
  BSA_REQUIRE(!entry.name.empty(), "scheduler registration with empty name");
  BSA_REQUIRE(entry.name == ascii_lower(entry.name) &&
                  entry.name.find(':') == std::string::npos &&
                  entry.name.find(',') == std::string::npos &&
                  entry.name.find('=') == std::string::npos,
              "scheduler name '" << entry.name
                                 << "' is not a canonical identifier");
  BSA_REQUIRE(find(entry.name) == nullptr,
              "scheduler '" << entry.name << "' is already registered");
  BSA_REQUIRE(entry.factory != nullptr,
              "scheduler '" << entry.name << "' registered without a factory");
  entries_.push_back(std::move(entry));
}

const SchedulerRegistry::Entry* SchedulerRegistry::find(
    const std::string& name) const {
  const std::string key = ascii_lower(name);
  for (const Entry& e : entries_) {
    if (e.name == key) return &e;
  }
  return nullptr;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::unique_ptr<Scheduler> SchedulerRegistry::resolve(
    const std::string& spec) const {
  const ParsedSpec parsed = parse_spec(spec);
  const Entry* entry = find(parsed.name);
  BSA_REQUIRE(entry != nullptr, "unknown scheduler '"
                                    << parsed.name << "'; registered: "
                                    << join_list(names(), ", "));
  for (const auto& [key, _] : parsed.options) {
    bool known = false;
    for (const OptionDoc& doc : entry->options) known = known || doc.name == key;
    if (!known) {
      std::vector<std::string> valid;
      valid.reserve(entry->options.size());
      for (const OptionDoc& doc : entry->options) valid.push_back(doc.name);
      BSA_REQUIRE(false, "scheduler '"
                             << entry->name << "': unknown option '" << key
                             << "'; valid options: "
                             << (valid.empty() ? std::string("(none)")
                                               : join_list(valid, ", ")));
    }
  }
  return entry->factory(SpecOptions("scheduler", entry->name, parsed.options));
}

std::vector<std::string> SchedulerRegistry::split_spec_list(
    const std::string& text) const {
  return bsa::split_spec_list(
      text, [this](const std::string& name) { return find(name) != nullptr; });
}

std::string SchedulerRegistry::canonical(const std::string& spec) const {
  return resolve(spec)->spec();
}

std::string SchedulerRegistry::display_label(const std::string& spec) const {
  return resolve(spec)->display_label();
}

const SchedulerRegistry& SchedulerRegistry::global() {
  static const SchedulerRegistry* instance = [] {
    auto* r = new SchedulerRegistry();
    register_builtin_schedulers(*r);
    return r;
  }();
  return *instance;
}

}  // namespace bsa::sched
