#include "sched/scheduler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>

#include "common/check.hpp"
#include "common/cli.hpp"

namespace bsa::sched {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace

std::string ascii_lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Scheduler::display_label() const {
  const std::string canonical = spec();
  return canonical.find(':') == std::string::npos ? display_name()
                                                  : canonical;
}

ParsedSpec parse_spec(const std::string& spec) {
  const std::string text = trim(spec);
  BSA_REQUIRE(!text.empty(), "scheduler spec is empty");
  ParsedSpec out;
  const std::size_t colon = text.find(':');
  out.name = ascii_lower(trim(text.substr(0, colon)));
  BSA_REQUIRE(!out.name.empty(),
              "scheduler spec '" << spec << "' has an empty name");
  if (colon == std::string::npos) return out;

  const std::string opts = text.substr(colon + 1);
  BSA_REQUIRE(!trim(opts).empty(),
              "scheduler spec '" << spec
                                 << "' has a ':' but no options after it");
  std::size_t pos = 0;
  while (pos <= opts.size()) {
    const std::size_t comma = opts.find(',', pos);
    const std::string item =
        opts.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const std::size_t eq = item.find('=');
    BSA_REQUIRE(eq != std::string::npos,
                "scheduler spec '" << spec << "': option '" << trim(item)
                                   << "' is not of the form key=value");
    const std::string key = ascii_lower(trim(item.substr(0, eq)));
    const std::string value = ascii_lower(trim(item.substr(eq + 1)));
    BSA_REQUIRE(!key.empty(),
                "scheduler spec '" << spec << "': option with empty key");
    BSA_REQUIRE(!value.empty(), "scheduler spec '"
                                    << spec << "': option '" << key
                                    << "' has an empty value");
    for (const auto& [seen, _] : out.options) {
      BSA_REQUIRE(seen != key, "scheduler spec '" << spec
                                                  << "': duplicate option '"
                                                  << key << "'");
    }
    out.options.emplace_back(key, value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
    BSA_REQUIRE(!trim(opts.substr(pos)).empty(),
                "scheduler spec '" << spec << "' ends with ','");
  }
  return out;
}

// --- SpecOptions ------------------------------------------------------------

const std::string* SpecOptions::raw(const std::string& key) const {
  for (const auto& [k, v] : options_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool SpecOptions::has(const std::string& key) const {
  return raw(key) != nullptr;
}

std::string SpecOptions::get_choice(const std::string& key,
                                    const std::vector<std::string>& choices,
                                    const std::string& fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  for (const std::string& c : choices) {
    if (*v == c) return c;
  }
  BSA_REQUIRE(false, "scheduler '" << name_ << "': option '" << key
                                   << "' expects one of {" << join(choices, ", ")
                                   << "}, got '" << *v << "'");
  return fallback;  // unreachable
}

bool SpecOptions::get_flag(const std::string& key, bool fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const std::optional<bool> parsed = parse_bool_literal(*v);
  BSA_REQUIRE(parsed.has_value(),
              "scheduler '" << name_ << "': option '" << key
                            << "' expects on|off, got '" << *v << "'");
  return *parsed;
}

int SpecOptions::get_int(const std::string& key, int fallback,
                         int min_value) const {
  // Sanity ceiling for counted options (sweep counts and the like): far
  // above any sensible value, and keeps the value in int range.
  constexpr std::int64_t kMaxIntOption = 1000000000;
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const std::optional<std::int64_t> parsed = parse_int_literal(*v);
  BSA_REQUIRE(parsed.has_value() && *parsed >= min_value &&
                  *parsed <= kMaxIntOption,
              "scheduler '" << name_ << "': option '" << key
                            << "' expects an integer in [" << min_value
                            << ", " << kMaxIntOption << "], got '" << *v
                            << "'");
  return static_cast<int>(*parsed);
}

std::uint64_t SpecOptions::get_uint64(const std::string& key,
                                      std::uint64_t fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const std::optional<std::uint64_t> parsed = parse_uint64_literal(*v);
  BSA_REQUIRE(parsed.has_value(),
              "scheduler '" << name_ << "': option '" << key
                            << "' expects an unsigned integer, got '" << *v
                            << "'");
  return *parsed;
}

// --- SchedulerRegistry ------------------------------------------------------

void SchedulerRegistry::add(Entry entry) {
  BSA_REQUIRE(!entry.name.empty(), "scheduler registration with empty name");
  BSA_REQUIRE(entry.name == ascii_lower(entry.name) &&
                  entry.name.find(':') == std::string::npos &&
                  entry.name.find(',') == std::string::npos &&
                  entry.name.find('=') == std::string::npos,
              "scheduler name '" << entry.name
                                 << "' is not a canonical identifier");
  BSA_REQUIRE(find(entry.name) == nullptr,
              "scheduler '" << entry.name << "' is already registered");
  BSA_REQUIRE(entry.factory != nullptr,
              "scheduler '" << entry.name << "' registered without a factory");
  entries_.push_back(std::move(entry));
}

const SchedulerRegistry::Entry* SchedulerRegistry::find(
    const std::string& name) const {
  const std::string key = ascii_lower(name);
  for (const Entry& e : entries_) {
    if (e.name == key) return &e;
  }
  return nullptr;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::unique_ptr<Scheduler> SchedulerRegistry::resolve(
    const std::string& spec) const {
  const ParsedSpec parsed = parse_spec(spec);
  const Entry* entry = find(parsed.name);
  BSA_REQUIRE(entry != nullptr, "unknown scheduler '"
                                    << parsed.name << "'; registered: "
                                    << join(names(), ", "));
  for (const auto& [key, _] : parsed.options) {
    bool known = false;
    for (const OptionDoc& doc : entry->options) known = known || doc.name == key;
    if (!known) {
      std::vector<std::string> valid;
      valid.reserve(entry->options.size());
      for (const OptionDoc& doc : entry->options) valid.push_back(doc.name);
      BSA_REQUIRE(false, "scheduler '"
                             << entry->name << "': unknown option '" << key
                             << "'; valid options: "
                             << (valid.empty() ? std::string("(none)")
                                               : join(valid, ", ")));
    }
  }
  return entry->factory(SpecOptions(entry->name, parsed.options));
}

std::vector<std::string> SchedulerRegistry::split_spec_list(
    const std::string& text) const {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token = trim(
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos));
    const std::size_t eq = token.find('=');
    const std::size_t colon = token.find(':');
    const bool continuation =
        !specs.empty() && eq != std::string::npos &&
        (colon == std::string::npos || colon > eq) &&
        find(ascii_lower(trim(token.substr(0, eq)))) == nullptr;
    if (continuation) {
      specs.back() += "," + token;
    } else {
      specs.push_back(token);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return specs;
}

std::string SchedulerRegistry::canonical(const std::string& spec) const {
  return resolve(spec)->spec();
}

std::string SchedulerRegistry::display_label(const std::string& spec) const {
  return resolve(spec)->display_label();
}

const SchedulerRegistry& SchedulerRegistry::global() {
  static const SchedulerRegistry* instance = [] {
    auto* r = new SchedulerRegistry();
    register_builtin_schedulers(*r);
    return r;
  }();
  return *instance;
}

}  // namespace bsa::sched
