#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"

/// \file schedule_io.hpp
/// Schedule serialization: a line-oriented text format (round-trippable),
/// a CSV event dump for spreadsheet analysis, and Graphviz DOT export of
/// the mapped graph (tasks coloured by processor).
///
/// Text format:
///
///   # schedule: <n> tasks, <hops> hops
///   task <id> <proc> <start> <finish>
///   hop <edge> <link> <start> <finish>     -- hops listed in route order
///
/// Ids are 0-based and refer to the TaskGraph/Topology the schedule was
/// built against; read_schedule_text rebuilds a Schedule over the same
/// graph and topology.

namespace bsa::sched {

/// Write `s` in the native text format. Partial schedules allowed.
void write_schedule_text(std::ostream& os, const Schedule& s);
[[nodiscard]] std::string schedule_to_text(const Schedule& s);

/// Parse the native text format into a schedule over `g` and `topo`.
/// Throws PreconditionError on malformed input or ids out of range.
[[nodiscard]] Schedule read_schedule_text(std::istream& is,
                                          const graph::TaskGraph& g,
                                          const net::Topology& topo);
[[nodiscard]] Schedule schedule_from_text(const std::string& text,
                                          const graph::TaskGraph& g,
                                          const net::Topology& topo);

/// CSV dump with one row per event:
///   kind,who,where,start,finish
/// where kind is "task" (who = task name, where = P<i>) or "hop"
/// (who = src->dst, where = L<a><b>).
void write_schedule_csv(std::ostream& os, const Schedule& s);

/// Graphviz DOT of the task graph with nodes grouped/coloured by the
/// processor the schedule assigned them to.
void write_schedule_dot(std::ostream& os, const Schedule& s,
                        const std::string& name = "schedule");

}  // namespace bsa::sched
