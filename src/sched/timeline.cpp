#include "sched/timeline.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace bsa::sched {

bool intervals_overlap(const Interval& a, const Interval& b) noexcept {
  // Shared time span must be non-empty; empty intervals overlap nothing.
  return time_lt(std::max(a.start, b.start), std::min(a.finish, b.finish));
}

Time earliest_fit(std::span<const Interval> busy, Time ready, Time duration) {
  BSA_REQUIRE(duration >= 0, "negative duration " << duration);
  Time candidate = std::max(ready, Time{0});
  for (const Interval& iv : busy) {
    if (time_le(candidate + duration, iv.start)) break;  // fits before iv
    candidate = std::max(candidate, iv.finish);
  }
  return candidate;
}

void insert_interval(std::vector<Interval>& busy, const Interval& iv) {
  const auto pos = std::lower_bound(
      busy.begin(), busy.end(), iv,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  if (pos != busy.end()) {
    BSA_ASSERT(!intervals_overlap(*pos, iv),
               "interval [" << iv.start << "," << iv.finish
                            << ") overlaps successor");
  }
  if (pos != busy.begin()) {
    BSA_ASSERT(!intervals_overlap(*(pos - 1), iv),
               "interval [" << iv.start << "," << iv.finish
                            << ") overlaps predecessor");
  }
  busy.insert(pos, iv);
}

std::vector<Interval> merge_busy(std::span<const Interval> a,
                                 std::span<const Interval> b) {
  std::vector<Interval> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             [](const Interval& x, const Interval& y) {
               return x.start < y.start;
             });
  return out;
}

bool is_well_formed(std::span<const Interval> busy) noexcept {
  for (std::size_t i = 1; i < busy.size(); ++i) {
    if (busy[i].start < busy[i - 1].start) return false;
    if (time_lt(busy[i].start, busy[i - 1].finish)) return false;
  }
  for (const Interval& iv : busy) {
    if (time_lt(iv.finish, iv.start)) return false;
  }
  return true;
}

}  // namespace bsa::sched
