#include "sched/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace bsa::sched {

bool intervals_overlap(const Interval& a, const Interval& b) noexcept {
  // Shared time span must be non-empty; empty intervals overlap nothing.
  return time_lt(std::max(a.start, b.start), std::min(a.finish, b.finish));
}

Time earliest_fit(std::span<const Interval> busy, Time ready, Time duration) {
  BSA_REQUIRE(duration >= 0, "negative duration " << duration);
  Time candidate = std::max(ready, Time{0});
  for (const Interval& iv : busy) {
    if (time_le(candidate + duration, iv.start)) break;  // fits before iv
    candidate = std::max(candidate, iv.finish);
  }
  return candidate;
}

void insert_interval(std::vector<Interval>& busy, const Interval& iv) {
  const auto pos = std::lower_bound(
      busy.begin(), busy.end(), iv,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  if (pos != busy.end()) {
    BSA_ASSERT(!intervals_overlap(*pos, iv),
               "interval [" << iv.start << "," << iv.finish
                            << ") overlaps successor");
  }
  if (pos != busy.begin()) {
    BSA_ASSERT(!intervals_overlap(*(pos - 1), iv),
               "interval [" << iv.start << "," << iv.finish
                            << ") overlaps predecessor");
  }
  busy.insert(pos, iv);
}

std::vector<Interval> merge_busy(std::span<const Interval> a,
                                 std::span<const Interval> b) {
  std::vector<Interval> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             [](const Interval& x, const Interval& y) {
               return x.start < y.start;
             });
  return out;
}

bool is_well_formed(std::span<const Interval> busy) noexcept {
  for (std::size_t i = 1; i < busy.size(); ++i) {
    if (busy[i].start < busy[i - 1].start) return false;
    if (time_lt(busy[i].start, busy[i - 1].finish)) return false;
  }
  for (const Interval& iv : busy) {
    if (time_lt(iv.finish, iv.start)) return false;
  }
  return true;
}

// --- SlotIndex ---------------------------------------------------------------

void SlotIndex::reset() noexcept {
  built_ = false;
  n_ = 0;
  unbuilt_queries_ = 0;
}

void SlotIndex::build(std::span<const Interval> busy) {
  n_ = static_cast<int>(busy.size());
  gap_end_.resize(busy.size());
  gap_open_.resize(busy.size());
  Time open = 0;  // running max of finishes == the scan's `candidate`
  tail_open_ = 0;
  for (std::size_t j = 0; j < busy.size(); ++j) {
    gap_end_[j] = busy[j].start;
    gap_open_[j] = open;
    open = std::max(open, busy[j].finish);
  }
  tail_open_ = open;
  // Segment tree of gap capacities (leftmost-fit descent).
  int p = 1;
  while (p < std::max(n_, 1)) p *= 2;
  seg_.assign(static_cast<std::size_t>(2 * p), -kInfiniteTime);
  for (int j = 0; j < n_; ++j) {
    seg_[static_cast<std::size_t>(p + j)] =
        gap_end_[static_cast<std::size_t>(j)] -
        gap_open_[static_cast<std::size_t>(j)];
  }
  for (int v = p - 1; v >= 1; --v) {
    seg_[static_cast<std::size_t>(v)] =
        std::max(seg_[static_cast<std::size_t>(2 * v)],
                 seg_[static_cast<std::size_t>(2 * v + 1)]);
  }
  built_ = true;
}

int SlotIndex::descend(int node, int lo, int hi, int from, Time min_cap) const {
  if (hi <= from || seg_[static_cast<std::size_t>(node)] < min_cap) return -1;
  if (hi - lo == 1) return lo >= n_ ? -1 : lo;
  const int mid = lo + (hi - lo) / 2;
  const int left = descend(2 * node, lo, mid, from, min_cap);
  if (left >= 0) return left;
  return descend(2 * node + 1, mid, hi, from, min_cap);
}

Time SlotIndex::query(Time ready, Time duration) const {
  BSA_REQUIRE(duration >= 0, "negative duration " << duration);
  BSA_ASSERT(built_, "SlotIndex::query before build");
  const Time r0 = std::max(ready, Time{0});
  if (n_ == 0) return r0;

  // Gaps left of the ready point (their open edge <= r0): the scan's
  // candidate there is r0 itself, and the fit predicate is monotone in
  // the (sorted) gap right edges — binary search.
  const auto open_begin = gap_open_.begin();
  const int s = static_cast<int>(
      std::upper_bound(open_begin, open_begin + n_, r0) - open_begin);
  const auto end_begin = gap_end_.begin();
  const int a = static_cast<int>(
      std::partition_point(end_begin, end_begin + s,
                           [&](Time end) { return !time_le(r0 + duration, end); }) -
      end_begin);
  if (a < s) return r0;

  // Gaps right of the ready point: candidate is the gap's own open edge.
  // The tree prunes by capacity with an epsilon+ulp slack; leaves are
  // re-verified with the linear scan's exact predicate below.
  const Time slack =
      2 * kTimeEpsilon + 1e-12 * (std::abs(tail_open_) + std::abs(duration) + 1);
  const int leaves = static_cast<int>(seg_.size()) / 2;
  int j = s;
  while (j < n_) {
    j = descend(1, 0, leaves, j, duration - slack);
    if (j < 0) break;
    if (time_le(gap_open_[static_cast<std::size_t>(j)] + duration,
                gap_end_[static_cast<std::size_t>(j)])) {
      return gap_open_[static_cast<std::size_t>(j)];
    }
    ++j;  // epsilon-marginal false positive: keep searching rightward
  }
  return std::max(r0, tail_open_);
}

}  // namespace bsa::sched
