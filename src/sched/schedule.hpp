#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/topology.hpp"
#include "sched/timeline.hpp"

/// \file schedule.hpp
/// The schedule data structure shared by all scheduling algorithms.
///
/// A Schedule maps
///  * every task to (processor, start, finish), and
///  * every inter-processor message to a *route*: an ordered list of hops,
///    each hop occupying an exclusive interval on one link.
///
/// Messages between co-located tasks have an empty route. Orders on
/// processors and links are explicit (vectors in execution order); times
/// are kept consistent with those orders by the algorithms (see
/// retime.hpp). This mirrors the paper's model where both processors and
/// links are first-class scheduled resources.
///
/// Speculative mutation is supported through a journaled transaction
/// (Schedule::Transaction): while one is active every mutator records its
/// inverse, and rollback_transaction() replays the inverses in reverse —
/// restoring the schedule bit-exactly (including order positions among
/// equal-time ties) in time proportional to the mutations performed, not
/// the schedule size. BSA's makespan-guarded migrations and refine's move
/// evaluation use this instead of whole-schedule snapshot copies (see
/// docs/DESIGN_PERF.md).

namespace bsa::sched {

/// One hop of a message route: the message occupies `link` during
/// [start, finish).
struct Hop {
  LinkId link = kInvalidLink;
  Time start = kUnsetTime;
  Time finish = kUnsetTime;
};

/// A booking on a link timeline, referring back to its message hop.
struct LinkBooking {
  EdgeId edge = kInvalidEdge;
  int hop_index = 0;
  Time start = kUnsetTime;
  Time finish = kUnsetTime;
};

class Schedule {
 public:
  /// Journal of inverse operations for one speculative mutation episode.
  ///
  /// Owned by the caller and reusable: all storage keeps its capacity
  /// across begin/commit/rollback cycles, so a long-lived Transaction
  /// makes guarded mutation allocation-free in steady state. A
  /// Transaction is pure data — it is driven through
  /// Schedule::begin_transaction / commit_transaction /
  /// rollback_transaction and must not outlive mutations it journals
  /// (i.e. roll back or commit before destroying either side).
  class Transaction {
   public:
    Transaction() = default;
    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;

    /// Number of journaled mutations (0 right after begin/commit).
    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

   private:
    friend class Schedule;

    enum class Op : unsigned char {
      kPlaceTask,     ///< undo: erase task from its processor order
      kUnplaceTask,   ///< undo: re-insert placement at recorded position
      kSetTaskTimes,  ///< undo: restore previous task times
      kAppendHop,     ///< undo: pop last hop, erase its booking
      kEraseHop,      ///< undo: push hop back, re-insert its booking
      kSetHopTimes,   ///< undo: restore previous hop/booking times
      kOrderSnapshot,  ///< undo: restore a processor order wholesale
      kBookingSnapshot,  ///< undo: restore a link-booking order wholesale
    };
    struct Record {
      Op op;
      std::int32_t a = 0;     // primary id: task / edge / proc / link
      std::int32_t b = 0;     // secondary id: proc / link
      std::int32_t idx0 = 0;  // order position / hop index
      std::int32_t idx1 = 0;  // booking position / snapshot slot
      Time t0 = 0, t1 = 0;    // previous start / finish
    };

    void reset() noexcept {
      records_.clear();
      orders_used_ = 0;
      bookings_used_ = 0;
    }

    std::vector<Record> records_;
    // Whole-vector snapshots for normalize_orders (the only mutator whose
    // inverse is not O(1) to record). Slots are reused so inner vectors
    // keep their capacity.
    std::vector<std::vector<TaskId>> order_snaps_;
    std::vector<std::vector<LinkBooking>> booking_snaps_;
    std::size_t orders_used_ = 0;
    std::size_t bookings_used_ = 0;
  };

  /// An empty schedule over `g` and `topo`; both must outlive the
  /// schedule. Copyable (used for tentative evaluation in tests); copies
  /// drop the lazily-built slot caches so snapshots stay cheap. Neither
  /// side of a copy may have an open transaction; moved-from/moved-into
  /// schedules must not have one either (unchecked for moves).
  Schedule(const graph::TaskGraph& g, const net::Topology& topo);
  Schedule(const Schedule& other);
  Schedule& operator=(const Schedule& other);
  Schedule(Schedule&&) noexcept = default;
  Schedule& operator=(Schedule&&) noexcept = default;
  ~Schedule() = default;

  // --- transactions -------------------------------------------------------
  /// Start journaling mutations into `txn` (cleared first). At most one
  /// transaction may be active per schedule; `txn` must stay alive until
  /// the matching commit or rollback.
  void begin_transaction(Transaction& txn);
  /// Stop journaling and discard the journal (mutations are kept).
  void commit_transaction();
  /// Undo every journaled mutation in reverse order, restoring the
  /// schedule bit-exactly to its begin_transaction state, then deactivate
  /// the transaction. Cost is O(mutations journaled), not O(schedule).
  void rollback_transaction();
  [[nodiscard]] bool in_transaction() const noexcept {
    return txn_ != nullptr;
  }

  [[nodiscard]] const graph::TaskGraph& task_graph() const noexcept {
    return *graph_;
  }
  [[nodiscard]] const net::Topology& topology() const noexcept {
    return *topo_;
  }

  // --- task queries -------------------------------------------------------
  [[nodiscard]] bool is_placed(TaskId t) const;
  [[nodiscard]] ProcId proc_of(TaskId t) const;
  [[nodiscard]] Time start_of(TaskId t) const;
  [[nodiscard]] Time finish_of(TaskId t) const;
  /// Tasks assigned to `p` in execution order.
  [[nodiscard]] const std::vector<TaskId>& tasks_on(ProcId p) const;
  [[nodiscard]] int num_placed() const noexcept { return num_placed_; }
  [[nodiscard]] bool all_placed() const {
    return num_placed_ == graph_->num_tasks();
  }
  /// Max finish time over placed tasks (0 when empty) — the paper's
  /// schedule length SL.
  [[nodiscard]] Time makespan() const;

  // --- message queries ----------------------------------------------------
  /// Route of message `e` in hop order; empty for co-located endpoints or
  /// unrouted messages.
  [[nodiscard]] const std::vector<Hop>& route_of(EdgeId e) const;
  /// Bookings on link `l` in transmission order.
  [[nodiscard]] const std::vector<LinkBooking>& bookings_on(LinkId l) const;
  /// Arrival time of message `e` at its destination processor: finish of
  /// the last hop, or finish of the source task when the route is empty.
  [[nodiscard]] Time arrival_of(EdgeId e) const;

  // --- slot search --------------------------------------------------------
  /// Earliest start >= ready of an idle gap of `duration` on processor `p`
  /// (insertion based). Served from a lazily-built per-processor
  /// SlotIndex — amortized O(log k) per query, invalidated by mutations
  /// of `p`'s timeline. Not thread-safe: concurrent const slot queries on
  /// the same Schedule race on the cache.
  [[nodiscard]] Time earliest_task_slot(ProcId p, Time ready,
                                        Time duration) const;
  /// Earliest start >= ready of an idle gap of `duration` on link `l`
  /// (same lazily-indexed scheme as earliest_task_slot).
  [[nodiscard]] Time earliest_link_slot(LinkId l, Time ready,
                                        Time duration) const;
  /// SlotIndex builds this schedule object has performed — an
  /// observability counter (docs/DESIGN_OBS.md). Deterministic: builds
  /// depend only on the query/mutation sequence. Copies start at 0 and
  /// copy-assignment keeps the destination's count, so the total is
  /// exact even under snapshot-rollback restores.
  [[nodiscard]] std::int64_t slot_index_builds() const noexcept {
    return slot_index_builds_;
  }
  /// Busy intervals of a processor / link in time order (for overlay
  /// computations by algorithms).
  [[nodiscard]] std::vector<Interval> busy_of_proc(ProcId p) const;
  [[nodiscard]] std::vector<Interval> busy_of_link(LinkId l) const;

  // --- mutation -----------------------------------------------------------
  /// Assign task `t` to processor `p` at [start, finish). Inserted into
  /// the processor order by start time. Throws if already placed.
  void place_task(TaskId t, ProcId p, Time start, Time finish);
  /// Remove `t` from its processor (its routes are untouched).
  void unplace_task(TaskId t);
  /// Update times of a placed task without changing processor or order
  /// (used by re-timing).
  void set_task_times(TaskId t, Time start, Time finish);

  /// Install a route for message `e`, booking every hop on its link.
  /// Requires: e currently has no route; hops contiguous in time
  /// (non-decreasing); each hop's interval free on its link.
  void set_route(EdgeId e, std::vector<Hop> hops);
  /// Append one hop to the (possibly empty) route of `e`, booking it on
  /// its link. The hop must start no earlier than the previous hop's
  /// finish and must not overlap existing bookings on its link.
  void append_hop(EdgeId e, const Hop& hop);
  /// Remove the route of `e` and release its link bookings (no-op when
  /// route already empty).
  void clear_route(EdgeId e);
  /// Update times of one hop without changing link or transmission order
  /// (used by re-timing).
  void set_hop_times(EdgeId e, int hop_index, Time start, Time finish);

  /// Re-establish link-booking and processor orders sorted by start time
  /// after a re-timing pass (stable; equal starts keep relative order).
  void normalize_orders();

 private:
  struct Placement {
    ProcId proc = kInvalidProc;
    Time start = kUnsetTime;
    Time finish = kUnsetTime;
  };

  void check_task(TaskId t) const;
  void check_edge(EdgeId e) const;
  void check_link(LinkId l) const;
  void check_proc(ProcId p) const;

  const graph::TaskGraph* graph_;
  const net::Topology* topo_;
  std::vector<Placement> placements_;         // by TaskId
  std::vector<std::vector<TaskId>> proc_tasks_;  // by ProcId, execution order
  std::vector<std::vector<Hop>> routes_;      // by EdgeId
  std::vector<std::vector<LinkBooking>> link_bookings_;  // by LinkId
  int num_placed_ = 0;
  /// Lazily-built free-slot indexes (reset by mutations, rebuilt once a
  /// resource shows repeated queries without mutation — the first few
  /// post-invalidation queries are answered by a linear earliest_fit
  /// scan instead, identical answers, no build churn); never copied with
  /// the schedule.
  mutable std::vector<SlotIndex> proc_slots_;  // by ProcId
  mutable std::vector<SlotIndex> link_slots_;  // by LinkId
  /// Reused buffer for slot queries on unbuilt indexes (no allocation on
  /// the query hot path).
  mutable std::vector<Interval> slot_scratch_;
  /// Builds performed by this object (see slot_index_builds()); not
  /// copied with the schedule content.
  mutable std::int64_t slot_index_builds_ = 0;
  /// Active transaction journal; mutators record inverses while set.
  Transaction* txn_ = nullptr;

  /// Testing aid (tests/validate_mutation_test.cpp): the public mutators
  /// keep routes and link bookings in sync by construction, so the
  /// validator's booking/route-mismatch checks are unreachable through
  /// them. The peer corrupts the private state directly to prove those
  /// checks fire.
  friend struct ScheduleTestPeer;
};

}  // namespace bsa::sched
