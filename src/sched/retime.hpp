#pragma once

#include "common/types.hpp"
#include "network/cost_model.hpp"
#include "sched/schedule.hpp"

/// \file retime.hpp
/// Schedule re-timing.
///
/// After BSA migrates a task away from a processor, the tasks left behind
/// (and messages queued behind released link slots) can start earlier —
/// the paper's "bubbling up". Two re-timing engines are provided:
///
/// 1. `try_retime` / `retime` — *order preserving*: recompute the earliest
///    consistent start of every task and hop while preserving the task
///    order on every processor and the transmission order on every link
///    (longest-path sweep over the order-constraint DAG). Fails when the
///    recorded orders are cyclic, which can happen transiently right
///    after a migration re-issues outgoing routes with later hop times.
///
/// 2. `replay_retime` — *order re-deriving*: keep only the assignment
///    (task -> processor, message -> link sequence) and replay everything
///    through insertion-based list scheduling, processing items in the
///    order of their previous start times. This realises "bubbling up"
///    even when the recorded orders became inconsistent; it cannot
///    deadlock because it only depends on the (acyclic) task graph and
///    route chains.
///
/// BSA runs `try_retime` after every migration and falls back to
/// `replay_retime` on the rare cycle (see core/bsa.cpp).

namespace bsa::sched {

/// Order-preserving earliest-time recomputation. Returns true and updates
/// `s` (makespan in *makespan when non-null); returns false — leaving `s`
/// untouched — when the order constraints contain a cycle. Partial
/// schedules are allowed.
[[nodiscard]] bool try_retime(Schedule& s,
                              const net::HeterogeneousCostModel& costs,
                              Time* makespan = nullptr);

/// Throwing wrapper around try_retime: InvariantError on cycle. Returns
/// the resulting makespan.
Time retime(Schedule& s, const net::HeterogeneousCostModel& costs);

/// Rebuild all times (and resource orders) by replaying the current
/// assignment through insertion-based list scheduling. Priorities are the
/// previous start times (ties: tasks before hops, then ids), so relative
/// placement is preserved wherever feasible. `insertion_slots=false`
/// replays with append-only placement instead (BSA's slot-policy
/// ablation). Returns the resulting makespan. Requires a complete
/// placement.
Time replay_retime(Schedule& s, const net::HeterogeneousCostModel& costs,
                   bool insertion_slots = true);

}  // namespace bsa::sched
