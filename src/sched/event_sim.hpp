#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "network/cost_model.hpp"
#include "sched/schedule.hpp"

/// \file event_sim.hpp
/// Independent discrete-event execution of a schedule.
///
/// Given only the *orders* of a schedule (task order per processor,
/// transmission order per link, hop order per route), the simulator
/// executes the program: a task starts when it reaches the head of its
/// processor queue and all of its messages have arrived; a hop transmits
/// when it reaches the head of its link queue and its payload is present
/// at the link's tail processor.
///
/// This is an independent implementation of the semantics that
/// sched::retime computes by longest path; tests cross-check the two
/// (catching bugs in either). It also detects deadlocks: orders that can
/// never be executed.

namespace bsa::sched {

struct SimulationResult {
  bool completed = false;   ///< all tasks and hops executed
  std::string error;        ///< non-empty when deadlocked
  Time makespan = 0;
  std::vector<Time> task_start;   ///< by TaskId (kUnsetTime when not run)
  std::vector<Time> task_finish;  ///< by TaskId
};

/// Execute the orders of `s` and return the resulting times. The schedule
/// itself is not modified. Requires all tasks placed.
[[nodiscard]] SimulationResult simulate_execution(
    const Schedule& s, const net::HeterogeneousCostModel& costs);

/// True when simulated times equal the schedule's recorded times (within
/// the library time tolerance) for every task.
[[nodiscard]] bool simulation_matches(const Schedule& s,
                                      const SimulationResult& result);

}  // namespace bsa::sched
