#include "sched/assignment.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/levels.hpp"
#include "sched/timeline.hpp"

namespace bsa::sched {

Schedule schedule_from_assignment(const graph::TaskGraph& g,
                                  const net::Topology& topo,
                                  const net::HeterogeneousCostModel& costs,
                                  std::span<const ProcId> assignment,
                                  const net::RoutingTable& table) {
  BSA_REQUIRE(assignment.size() == static_cast<std::size_t>(g.num_tasks()),
              "assignment size " << assignment.size() << " != num_tasks "
                                 << g.num_tasks());
  for (const ProcId p : assignment) {
    BSA_REQUIRE(p >= 0 && p < topo.num_processors(),
                "assignment contains invalid processor " << p);
  }

  const graph::LevelSets levels = graph::compute_levels(g);
  Schedule s(g, topo);

  // Ready-driven list scheduling by descending b-level.
  std::vector<int> missing(static_cast<std::size_t>(g.num_tasks()));
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    missing[static_cast<std::size_t>(t)] = g.in_degree(t);
    if (g.in_degree(t) == 0) ready.push_back(t);
  }
  auto priority_less = [&](TaskId a, TaskId b) {
    const Cost ba = levels.b_level[static_cast<std::size_t>(a)];
    const Cost bb = levels.b_level[static_cast<std::size_t>(b)];
    if (!time_eq(ba, bb)) return ba > bb;
    return a < b;
  };

  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), priority_less);
    const TaskId t = ready.front();
    ready.erase(ready.begin());
    const ProcId p = assignment[static_cast<std::size_t>(t)];

    // Route incoming messages and compute the data-ready time.
    Time drt = 0;
    for (const EdgeId e : g.in_edges(t)) {
      const TaskId src = g.edge_src(e);
      const ProcId ps = s.proc_of(src);
      if (ps == p) {
        drt = std::max(drt, s.finish_of(src));
        continue;
      }
      Time ready_at = s.finish_of(src);
      for (const LinkId l : table.route(ps, p)) {
        const Time dur = costs.comm_cost(e, l);
        const Time st = s.earliest_link_slot(l, ready_at, dur);
        s.append_hop(e, Hop{l, st, st + dur});
        ready_at = st + dur;
      }
      drt = std::max(drt, ready_at);
    }

    const Time dur = costs.exec_cost(t, p);
    const Time st = s.earliest_task_slot(p, drt, dur);
    s.place_task(t, p, st, st + dur);

    for (const EdgeId e : g.out_edges(t)) {
      const TaskId d = g.edge_dst(e);
      if (--missing[static_cast<std::size_t>(d)] == 0) ready.push_back(d);
    }
  }
  BSA_ASSERT(s.all_placed(), "assignment scheduling left tasks unplaced");
  return s;
}

Schedule schedule_from_assignment(const graph::TaskGraph& g,
                                  const net::Topology& topo,
                                  const net::HeterogeneousCostModel& costs,
                                  std::span<const ProcId> assignment) {
  const net::RoutingTable table(topo);
  return schedule_from_assignment(g, topo, costs, assignment, table);
}

std::vector<ProcId> assignment_of(const Schedule& s) {
  BSA_REQUIRE(s.all_placed(), "assignment_of requires a complete schedule");
  std::vector<ProcId> out(
      static_cast<std::size_t>(s.task_graph().num_tasks()));
  for (TaskId t = 0; t < s.task_graph().num_tasks(); ++t) {
    out[static_cast<std::size_t>(t)] = s.proc_of(t);
  }
  return out;
}

}  // namespace bsa::sched
