#include "sched/schedule_io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "common/table.hpp"

namespace bsa::sched {

void write_schedule_text(std::ostream& os, const Schedule& s) {
  const auto& g = s.task_graph();
  std::size_t hops = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) hops += s.route_of(e).size();
  os << "# schedule: " << s.num_placed() << " tasks, " << hops << " hops\n";
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.is_placed(t)) continue;
    os << "task " << t << ' ' << s.proc_of(t) << ' ' << s.start_of(t) << ' '
       << s.finish_of(t) << '\n';
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const Hop& h : s.route_of(e)) {
      os << "hop " << e << ' ' << h.link << ' ' << h.start << ' ' << h.finish
         << '\n';
    }
  }
}

std::string schedule_to_text(const Schedule& s) {
  std::ostringstream os;
  write_schedule_text(os, s);
  return os.str();
}

Schedule read_schedule_text(std::istream& is, const graph::TaskGraph& g,
                            const net::Topology& topo) {
  Schedule s(g, topo);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    if (directive[0] == '#') continue;
    if (directive == "task") {
      TaskId t = kInvalidTask;
      ProcId p = kInvalidProc;
      Time start = 0;
      Time finish = 0;
      BSA_REQUIRE(static_cast<bool>(ls >> t >> p >> start >> finish),
                  "line " << line_no
                          << ": task needs <id> <proc> <start> <finish>");
      s.place_task(t, p, start, finish);
    } else if (directive == "hop") {
      EdgeId e = kInvalidEdge;
      LinkId l = kInvalidLink;
      Time start = 0;
      Time finish = 0;
      BSA_REQUIRE(static_cast<bool>(ls >> e >> l >> start >> finish),
                  "line " << line_no
                          << ": hop needs <edge> <link> <start> <finish>");
      s.append_hop(e, Hop{l, start, finish});
    } else {
      BSA_REQUIRE(false, "line " << line_no << ": unknown directive '"
                                 << directive << "'");
    }
  }
  return s;
}

Schedule schedule_from_text(const std::string& text,
                            const graph::TaskGraph& g,
                            const net::Topology& topo) {
  std::istringstream is(text);
  return read_schedule_text(is, g, topo);
}

void write_schedule_csv(std::ostream& os, const Schedule& s) {
  const auto& g = s.task_graph();
  const auto& topo = s.topology();
  os << "kind,who,where,start,finish\n";
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.is_placed(t)) continue;
    os << "task," << csv_escape(g.task_name(t)) << ",P"
       << (s.proc_of(t) + 1) << ',' << s.start_of(t) << ',' << s.finish_of(t)
       << '\n';
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const std::string who = g.task_name(g.edge_src(e)) + "->" +
                            g.task_name(g.edge_dst(e));
    for (const Hop& h : s.route_of(e)) {
      const auto [a, b] = topo.link_endpoints(h.link);
      os << "hop," << csv_escape(who) << ",L" << (a + 1) << (b + 1) << ','
         << h.start << ',' << h.finish << '\n';
    }
  }
}

void write_schedule_dot(std::ostream& os, const Schedule& s,
                        const std::string& name) {
  const auto& g = s.task_graph();
  // A small qualitative palette, cycled over processors.
  static const char* kPalette[] = {"#8dd3c7", "#ffffb3", "#bebada", "#fb8072",
                                   "#80b1d3", "#fdb462", "#b3de69", "#fccde5"};
  constexpr int kPaletteSize = 8;
  os << "digraph \"" << name << "\" {\n  node [style=filled];\n";
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    os << "  n" << t << " [label=\"" << g.task_name(t);
    if (s.is_placed(t)) {
      os << "\\nP" << (s.proc_of(t) + 1) << " [" << s.start_of(t) << ','
         << s.finish_of(t) << ")\" fillcolor=\""
         << kPalette[s.proc_of(t) % kPaletteSize] << "\"];\n";
    } else {
      os << "\\n(unplaced)\" fillcolor=\"#dddddd\"];\n";
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "  n" << g.edge_src(e) << " -> n" << g.edge_dst(e);
    const auto& route = s.route_of(e);
    if (!route.empty()) {
      os << " [label=\"" << route.size() << " hop"
         << (route.size() > 1 ? "s" : "") << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace bsa::sched
