#include "sched/validate.hpp"

#include <sstream>

#include "common/check.hpp"

namespace bsa::sched {

std::string ValidationReport::to_string() const {
  if (issues.empty()) return "valid";
  std::ostringstream os;
  for (std::size_t i = 0; i < issues.size(); ++i) {
    if (i > 0) os << '\n';
    os << issues[i];
  }
  return os.str();
}

ValidationReport validate(const Schedule& s,
                          const net::HeterogeneousCostModel& costs) {
  ValidationReport report;
  auto issue = [&report](const std::string& text) {
    report.issues.push_back(text);
  };
  const auto& g = s.task_graph();
  const auto& topo = s.topology();

  // 1. Placement completeness and duration correctness.
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.is_placed(t)) {
      issue("task " + std::to_string(t) + " not placed");
      continue;
    }
    const ProcId p = s.proc_of(t);
    const Time expect = costs.exec_cost(t, p);
    if (!time_eq(s.finish_of(t) - s.start_of(t), expect)) {
      std::ostringstream os;
      os << "task " << t << " duration " << (s.finish_of(t) - s.start_of(t))
         << " != actual cost " << expect << " on P" << p;
      issue(os.str());
    }
    if (s.start_of(t) < -kTimeEpsilon) {
      issue("task " + std::to_string(t) + " starts before time 0");
    }
  }

  // 2. Processor exclusivity and order/time agreement.
  for (ProcId p = 0; p < topo.num_processors(); ++p) {
    const auto& order = s.tasks_on(p);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      const TaskId a = order[i];
      const TaskId b = order[i + 1];
      if (time_lt(s.start_of(b), s.finish_of(a))) {
        std::ostringstream os;
        os << "tasks " << a << " and " << b << " overlap on P" << p << " (["
           << s.start_of(a) << "," << s.finish_of(a) << ") vs ["
           << s.start_of(b) << "," << s.finish_of(b) << "))";
        issue(os.str());
      }
    }
  }

  // 3 + 4. Precedence and routes.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const TaskId src = g.edge_src(e);
    const TaskId dst = g.edge_dst(e);
    if (!s.is_placed(src) || !s.is_placed(dst)) continue;  // reported above
    const auto& route = s.route_of(e);
    const ProcId ps = s.proc_of(src);
    const ProcId pd = s.proc_of(dst);
    if (ps == pd) {
      if (!route.empty()) {
        issue("message " + std::to_string(e) +
              " routed although endpoints are co-located");
      }
      if (time_lt(s.start_of(dst), s.finish_of(src))) {
        std::ostringstream os;
        os << "precedence violated: task " << dst << " starts "
           << s.start_of(dst) << " before predecessor " << src << " finishes "
           << s.finish_of(src);
        issue(os.str());
      }
      continue;
    }
    if (route.empty()) {
      std::ostringstream os;
      os << "message " << e << " (" << src << "->" << dst
         << ") crosses processors P" << ps << "->P" << pd
         << " but has no route";
      issue(os.str());
      continue;
    }
    // Route contiguity (a walk from ps to pd).
    ProcId cur = ps;
    bool walk_ok = true;
    for (const Hop& h : route) {
      const auto [a, b] = topo.link_endpoints(h.link);
      if (cur == a) {
        cur = b;
      } else if (cur == b) {
        cur = a;
      } else {
        std::ostringstream os;
        os << "message " << e << " route broken: link " << h.link
           << " not incident to P" << cur;
        issue(os.str());
        walk_ok = false;
        break;
      }
    }
    if (walk_ok && cur != pd) {
      std::ostringstream os;
      os << "message " << e << " route ends at P" << cur << " instead of P"
         << pd;
      issue(os.str());
    }
    // Hop timing.
    Time prev_finish = s.finish_of(src);
    for (std::size_t i = 0; i < route.size(); ++i) {
      const Hop& h = route[i];
      if (time_lt(h.start, prev_finish)) {
        std::ostringstream os;
        os << "message " << e << " hop " << i << " starts " << h.start
           << " before its data is available at " << prev_finish;
        issue(os.str());
      }
      const Time expect = costs.comm_cost(e, h.link);
      if (!time_eq(h.finish - h.start, expect)) {
        std::ostringstream os;
        os << "message " << e << " hop " << i << " duration "
           << (h.finish - h.start) << " != actual comm cost " << expect
           << " on link " << h.link;
        issue(os.str());
      }
      prev_finish = h.finish;
    }
    if (time_lt(s.start_of(dst), prev_finish)) {
      std::ostringstream os;
      os << "task " << dst << " starts " << s.start_of(dst)
         << " before message " << e << " arrives at " << prev_finish;
      issue(os.str());
    }
  }

  // 5 + 6. Link exclusivity and booking/route agreement.
  std::size_t booked_hops = 0;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const auto& bookings = s.bookings_on(l);
    booked_hops += bookings.size();
    for (std::size_t i = 0; i + 1 < bookings.size(); ++i) {
      if (time_lt(bookings[i + 1].start, bookings[i].finish)) {
        std::ostringstream os;
        os << "link " << l << " contention: message " << bookings[i].edge
           << " hop " << bookings[i].hop_index << " overlaps message "
           << bookings[i + 1].edge << " hop " << bookings[i + 1].hop_index;
        issue(os.str());
      }
    }
    for (const LinkBooking& b : bookings) {
      const auto& route = s.route_of(b.edge);
      if (b.hop_index < 0 ||
          static_cast<std::size_t>(b.hop_index) >= route.size()) {
        issue("booking refers to missing hop of message " +
              std::to_string(b.edge));
        continue;
      }
      const Hop& h = route[static_cast<std::size_t>(b.hop_index)];
      if (h.link != l || !time_eq(h.start, b.start) ||
          !time_eq(h.finish, b.finish)) {
        issue("booking disagrees with route of message " +
              std::to_string(b.edge));
      }
    }
  }
  std::size_t route_hops = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) route_hops += s.route_of(e).size();
  if (route_hops != booked_hops) {
    std::ostringstream os;
    os << "route hop count " << route_hops << " != link booking count "
       << booked_hops;
    issue(os.str());
  }

  return report;
}

}  // namespace bsa::sched
