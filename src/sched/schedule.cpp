#include "sched/schedule.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace bsa::sched {

Schedule::Schedule(const graph::TaskGraph& g, const net::Topology& topo)
    : graph_(&g), topo_(&topo) {
  placements_.resize(static_cast<std::size_t>(g.num_tasks()));
  proc_tasks_.resize(static_cast<std::size_t>(topo.num_processors()));
  routes_.resize(static_cast<std::size_t>(g.num_edges()));
  link_bookings_.resize(static_cast<std::size_t>(topo.num_links()));
  proc_slots_.resize(static_cast<std::size_t>(topo.num_processors()));
  link_slots_.resize(static_cast<std::size_t>(topo.num_links()));
}

Schedule::Schedule(const Schedule& other)
    : graph_(other.graph_),
      topo_(other.topo_),
      placements_(other.placements_),
      proc_tasks_(other.proc_tasks_),
      routes_(other.routes_),
      link_bookings_(other.link_bookings_),
      num_placed_(other.num_placed_),
      proc_slots_(other.proc_slots_.size()),   // caches stay unbuilt
      link_slots_(other.link_slots_.size()) {}

Schedule& Schedule::operator=(const Schedule& other) {
  if (this == &other) return *this;
  BSA_REQUIRE(txn_ == nullptr,
              "copy-assignment into a schedule with an open transaction");
  graph_ = other.graph_;
  topo_ = other.topo_;
  placements_ = other.placements_;
  proc_tasks_ = other.proc_tasks_;
  routes_ = other.routes_;
  link_bookings_ = other.link_bookings_;
  num_placed_ = other.num_placed_;
  proc_slots_.assign(other.proc_slots_.size(), SlotIndex{});
  link_slots_.assign(other.link_slots_.size(), SlotIndex{});
  return *this;
}

// --- transactions -----------------------------------------------------------

void Schedule::begin_transaction(Transaction& txn) {
  BSA_REQUIRE(txn_ == nullptr, "a transaction is already active");
  txn.reset();
  txn_ = &txn;
}

void Schedule::commit_transaction() {
  BSA_REQUIRE(txn_ != nullptr, "commit without an active transaction");
  txn_->reset();
  txn_ = nullptr;
}

void Schedule::rollback_transaction() {
  BSA_REQUIRE(txn_ != nullptr, "rollback without an active transaction");
  Transaction& txn = *txn_;
  txn_ = nullptr;  // the undo writes below must not journal themselves
  // Replay the inverses newest-first: each undo sees exactly the state
  // that existed right after its forward op, so the recorded positions
  // (order slots, booking slots) are valid verbatim.
  for (auto it = txn.records_.rbegin(); it != txn.records_.rend(); ++it) {
    const Transaction::Record& r = *it;
    switch (r.op) {
      case Transaction::Op::kPlaceTask: {
        auto& pl = placements_[static_cast<std::size_t>(r.a)];
        auto& order = proc_tasks_[static_cast<std::size_t>(pl.proc)];
        BSA_ASSERT(order[static_cast<std::size_t>(r.idx0)] == r.a,
                   "transaction undo: order slot mismatch");
        order.erase(order.begin() + r.idx0);
        proc_slots_[static_cast<std::size_t>(pl.proc)].reset();
        pl = Placement{};
        --num_placed_;
        break;
      }
      case Transaction::Op::kUnplaceTask: {
        placements_[static_cast<std::size_t>(r.a)] =
            Placement{r.b, r.t0, r.t1};
        auto& order = proc_tasks_[static_cast<std::size_t>(r.b)];
        order.insert(order.begin() + r.idx0, r.a);
        proc_slots_[static_cast<std::size_t>(r.b)].reset();
        ++num_placed_;
        break;
      }
      case Transaction::Op::kSetTaskTimes: {
        auto& pl = placements_[static_cast<std::size_t>(r.a)];
        pl.start = r.t0;
        pl.finish = r.t1;
        proc_slots_[static_cast<std::size_t>(pl.proc)].reset();
        break;
      }
      case Transaction::Op::kAppendHop: {
        auto& route = routes_[static_cast<std::size_t>(r.a)];
        const Hop hop = route.back();
        route.pop_back();
        auto& bookings = link_bookings_[static_cast<std::size_t>(hop.link)];
        BSA_ASSERT(bookings[static_cast<std::size_t>(r.idx1)].edge == r.a,
                   "transaction undo: booking slot mismatch");
        bookings.erase(bookings.begin() + r.idx1);
        link_slots_[static_cast<std::size_t>(hop.link)].reset();
        break;
      }
      case Transaction::Op::kEraseHop: {
        auto& route = routes_[static_cast<std::size_t>(r.a)];
        BSA_ASSERT(static_cast<std::int32_t>(route.size()) == r.idx0,
                   "transaction undo: hop index mismatch");
        route.push_back(Hop{r.b, r.t0, r.t1});
        auto& bookings = link_bookings_[static_cast<std::size_t>(r.b)];
        bookings.insert(bookings.begin() + r.idx1,
                        LinkBooking{r.a, r.idx0, r.t0, r.t1});
        link_slots_[static_cast<std::size_t>(r.b)].reset();
        break;
      }
      case Transaction::Op::kSetHopTimes: {
        auto& hop = routes_[static_cast<std::size_t>(r.a)]
                           [static_cast<std::size_t>(r.idx0)];
        hop.start = r.t0;
        hop.finish = r.t1;
        auto& bk = link_bookings_[static_cast<std::size_t>(hop.link)]
                                 [static_cast<std::size_t>(r.idx1)];
        bk.start = r.t0;
        bk.finish = r.t1;
        link_slots_[static_cast<std::size_t>(hop.link)].reset();
        break;
      }
      case Transaction::Op::kOrderSnapshot: {
        proc_tasks_[static_cast<std::size_t>(r.a)] =
            txn.order_snaps_[static_cast<std::size_t>(r.idx1)];
        proc_slots_[static_cast<std::size_t>(r.a)].reset();
        break;
      }
      case Transaction::Op::kBookingSnapshot: {
        link_bookings_[static_cast<std::size_t>(r.a)] =
            txn.booking_snaps_[static_cast<std::size_t>(r.idx1)];
        link_slots_[static_cast<std::size_t>(r.a)].reset();
        break;
      }
    }
  }
  txn.reset();
}

void Schedule::check_task(TaskId t) const {
  BSA_REQUIRE(t >= 0 && t < graph_->num_tasks(),
              "task id " << t << " out of range");
}

void Schedule::check_edge(EdgeId e) const {
  BSA_REQUIRE(e >= 0 && e < graph_->num_edges(),
              "edge id " << e << " out of range");
}

void Schedule::check_link(LinkId l) const {
  BSA_REQUIRE(l >= 0 && l < topo_->num_links(),
              "link id " << l << " out of range");
}

void Schedule::check_proc(ProcId p) const {
  BSA_REQUIRE(p >= 0 && p < topo_->num_processors(),
              "processor id " << p << " out of range");
}

bool Schedule::is_placed(TaskId t) const {
  check_task(t);
  return placements_[static_cast<std::size_t>(t)].proc != kInvalidProc;
}

ProcId Schedule::proc_of(TaskId t) const {
  check_task(t);
  const auto& pl = placements_[static_cast<std::size_t>(t)];
  BSA_REQUIRE(pl.proc != kInvalidProc, "task " << t << " is not placed");
  return pl.proc;
}

Time Schedule::start_of(TaskId t) const {
  check_task(t);
  const auto& pl = placements_[static_cast<std::size_t>(t)];
  BSA_REQUIRE(pl.proc != kInvalidProc, "task " << t << " is not placed");
  return pl.start;
}

Time Schedule::finish_of(TaskId t) const {
  check_task(t);
  const auto& pl = placements_[static_cast<std::size_t>(t)];
  BSA_REQUIRE(pl.proc != kInvalidProc, "task " << t << " is not placed");
  return pl.finish;
}

const std::vector<TaskId>& Schedule::tasks_on(ProcId p) const {
  check_proc(p);
  return proc_tasks_[static_cast<std::size_t>(p)];
}

Time Schedule::makespan() const {
  Time mk = 0;
  for (const auto& pl : placements_) {
    if (pl.proc != kInvalidProc) mk = std::max(mk, pl.finish);
  }
  return mk;
}

const std::vector<Hop>& Schedule::route_of(EdgeId e) const {
  check_edge(e);
  return routes_[static_cast<std::size_t>(e)];
}

const std::vector<LinkBooking>& Schedule::bookings_on(LinkId l) const {
  check_link(l);
  return link_bookings_[static_cast<std::size_t>(l)];
}

Time Schedule::arrival_of(EdgeId e) const {
  check_edge(e);
  const auto& route = routes_[static_cast<std::size_t>(e)];
  if (!route.empty()) return route.back().finish;
  return finish_of(graph_->edge_src(e));
}

std::vector<Interval> Schedule::busy_of_proc(ProcId p) const {
  check_proc(p);
  std::vector<Interval> busy;
  busy.reserve(proc_tasks_[static_cast<std::size_t>(p)].size());
  for (const TaskId t : proc_tasks_[static_cast<std::size_t>(p)]) {
    const auto& pl = placements_[static_cast<std::size_t>(t)];
    busy.push_back(Interval{pl.start, pl.finish});
  }
  return busy;
}

std::vector<Interval> Schedule::busy_of_link(LinkId l) const {
  check_link(l);
  std::vector<Interval> busy;
  busy.reserve(link_bookings_[static_cast<std::size_t>(l)].size());
  for (const LinkBooking& b : link_bookings_[static_cast<std::size_t>(l)]) {
    busy.push_back(Interval{b.start, b.finish});
  }
  return busy;
}

namespace {
/// Queries answered by a plain scan before an invalidated resource's
/// index is rebuilt. Mutation-heavy phases (replay, migration commits)
/// touch a resource between almost every query, so an eager rebuild per
/// query is pure overhead; genuinely hot resources repay the build within
/// a few queries. Answers are bit-identical either way.
constexpr int kLinearSlotQueries = 2;
}  // namespace

Time Schedule::earliest_task_slot(ProcId p, Time ready, Time duration) const {
  check_proc(p);
  SlotIndex& idx = proc_slots_[static_cast<std::size_t>(p)];
  if (!idx.built()) {
    slot_scratch_.clear();
    for (const TaskId t : proc_tasks_[static_cast<std::size_t>(p)]) {
      const auto& pl = placements_[static_cast<std::size_t>(t)];
      slot_scratch_.push_back(Interval{pl.start, pl.finish});
    }
    if (idx.note_unbuilt_query() <= kLinearSlotQueries) {
      return earliest_fit(slot_scratch_, ready, duration);
    }
    ++slot_index_builds_;
    idx.build(slot_scratch_);
  }
  return idx.query(ready, duration);
}

Time Schedule::earliest_link_slot(LinkId l, Time ready, Time duration) const {
  check_link(l);
  SlotIndex& idx = link_slots_[static_cast<std::size_t>(l)];
  if (!idx.built()) {
    slot_scratch_.clear();
    for (const LinkBooking& b : link_bookings_[static_cast<std::size_t>(l)]) {
      slot_scratch_.push_back(Interval{b.start, b.finish});
    }
    if (idx.note_unbuilt_query() <= kLinearSlotQueries) {
      return earliest_fit(slot_scratch_, ready, duration);
    }
    ++slot_index_builds_;
    idx.build(slot_scratch_);
  }
  return idx.query(ready, duration);
}

void Schedule::place_task(TaskId t, ProcId p, Time start, Time finish) {
  check_task(t);
  check_proc(p);
  auto& pl = placements_[static_cast<std::size_t>(t)];
  BSA_REQUIRE(pl.proc == kInvalidProc, "task " << t << " already placed");
  BSA_REQUIRE(time_le(start, finish), "task " << t << " start " << start
                                              << " after finish " << finish);
  pl = Placement{p, start, finish};
  proc_slots_[static_cast<std::size_t>(p)].reset();
  auto& order = proc_tasks_[static_cast<std::size_t>(p)];
  const auto pos = std::find_if(order.begin(), order.end(), [&](TaskId u) {
    const auto& o = placements_[static_cast<std::size_t>(u)];
    return o.start > start || (o.start == start && o.finish > finish);
  });
  if (txn_ != nullptr) {
    txn_->records_.push_back(
        {Transaction::Op::kPlaceTask, t, p,
         static_cast<std::int32_t>(pos - order.begin()), 0, 0, 0});
  }
  order.insert(pos, t);
  ++num_placed_;
}

void Schedule::unplace_task(TaskId t) {
  check_task(t);
  auto& pl = placements_[static_cast<std::size_t>(t)];
  BSA_REQUIRE(pl.proc != kInvalidProc, "task " << t << " is not placed");
  proc_slots_[static_cast<std::size_t>(pl.proc)].reset();
  auto& order = proc_tasks_[static_cast<std::size_t>(pl.proc)];
  const auto pos = std::find(order.begin(), order.end(), t);
  BSA_ASSERT(pos != order.end(), "task missing from processor order");
  if (txn_ != nullptr) {
    // The exact order position is recorded: re-inserting by start-time
    // comparison could land elsewhere among equal-time ties.
    txn_->records_.push_back(
        {Transaction::Op::kUnplaceTask, t, pl.proc,
         static_cast<std::int32_t>(pos - order.begin()), 0, pl.start,
         pl.finish});
  }
  order.erase(pos);
  pl = Placement{};
  --num_placed_;
}

void Schedule::set_task_times(TaskId t, Time start, Time finish) {
  check_task(t);
  auto& pl = placements_[static_cast<std::size_t>(t)];
  BSA_REQUIRE(pl.proc != kInvalidProc, "task " << t << " is not placed");
  BSA_REQUIRE(time_le(start, finish), "task " << t << " start " << start
                                              << " after finish " << finish);
  proc_slots_[static_cast<std::size_t>(pl.proc)].reset();
  if (txn_ != nullptr) {
    txn_->records_.push_back({Transaction::Op::kSetTaskTimes, t, pl.proc, 0, 0,
                              pl.start, pl.finish});
  }
  pl.start = start;
  pl.finish = finish;
}

void Schedule::set_route(EdgeId e, std::vector<Hop> hops) {
  check_edge(e);
  BSA_REQUIRE(routes_[static_cast<std::size_t>(e)].empty(),
              "message " << e << " already routed");
  const std::size_t journal_mark =
      txn_ != nullptr ? txn_->records_.size() : 0;
  std::size_t added = 0;
  try {
    for (const Hop& h : hops) {
      append_hop(e, h);
      ++added;
    }
  } catch (...) {
    // Strong exception safety: release the hops already booked.
    auto& route = routes_[static_cast<std::size_t>(e)];
    while (added-- > 0) {
      const Hop h = route.back();
      auto& bookings = link_bookings_[static_cast<std::size_t>(h.link)];
      const int hop_index = static_cast<int>(route.size()) - 1;
      const auto pos = std::find_if(
          bookings.begin(), bookings.end(), [&](const LinkBooking& b) {
            return b.edge == e && b.hop_index == hop_index;
          });
      BSA_ASSERT(pos != bookings.end(), "rollback lost a booking");
      link_slots_[static_cast<std::size_t>(h.link)].reset();
      bookings.erase(pos);
      route.pop_back();
    }
    // The unwound hops' journal entries must go too: the mutations they
    // invert no longer exist.
    if (txn_ != nullptr) txn_->records_.resize(journal_mark);
    throw;
  }
}

void Schedule::append_hop(EdgeId e, const Hop& hop) {
  check_edge(e);
  check_link(hop.link);
  BSA_REQUIRE(time_le(hop.start, hop.finish), "hop with negative duration");
  auto& route = routes_[static_cast<std::size_t>(e)];
  if (!route.empty()) {
    BSA_REQUIRE(time_le(route.back().finish, hop.start),
                "route hops of message " << e << " not contiguous in time");
  }
  // Validate the booking before mutating anything (strong exception
  // safety: a rejected hop leaves the schedule untouched).
  auto& bookings = link_bookings_[static_cast<std::size_t>(hop.link)];
  const LinkBooking nb{e, static_cast<int>(route.size()), hop.start,
                       hop.finish};
  const auto pos = std::find_if(
      bookings.begin(), bookings.end(), [&](const LinkBooking& b) {
        return b.start > nb.start ||
               (b.start == nb.start && b.finish > nb.finish);
      });
  // Exclusivity: reject overlap with either neighbour.
  if (pos != bookings.end()) {
    BSA_ASSERT(time_le(nb.finish, pos->start),
               "hop overlap on link " << hop.link << " (successor)");
  }
  if (pos != bookings.begin()) {
    BSA_ASSERT(time_le((pos - 1)->finish, nb.start),
               "hop overlap on link " << hop.link << " (predecessor)");
  }
  if (txn_ != nullptr) {
    txn_->records_.push_back(
        {Transaction::Op::kAppendHop, e, hop.link, 0,
         static_cast<std::int32_t>(pos - bookings.begin()), 0, 0});
  }
  link_slots_[static_cast<std::size_t>(hop.link)].reset();
  route.push_back(hop);
  bookings.insert(pos, nb);
}

void Schedule::clear_route(EdgeId e) {
  check_edge(e);
  auto& route = routes_[static_cast<std::size_t>(e)];
  // Hops are released back-to-front so the journal's reverse replay
  // re-installs them front-to-back with valid hop indices.
  for (std::size_t i = route.size(); i-- > 0;) {
    const Hop hop = route[i];
    auto& bookings = link_bookings_[static_cast<std::size_t>(hop.link)];
    const auto pos = std::find_if(
        bookings.begin(), bookings.end(), [&](const LinkBooking& b) {
          return b.edge == e && b.hop_index == static_cast<int>(i);
        });
    BSA_ASSERT(pos != bookings.end(), "hop booking missing for message " << e);
    if (txn_ != nullptr) {
      txn_->records_.push_back(
          {Transaction::Op::kEraseHop, e, hop.link,
           static_cast<std::int32_t>(i),
           static_cast<std::int32_t>(pos - bookings.begin()), hop.start,
           hop.finish});
    }
    link_slots_[static_cast<std::size_t>(hop.link)].reset();
    bookings.erase(pos);
    route.pop_back();
  }
}

void Schedule::set_hop_times(EdgeId e, int hop_index, Time start, Time finish) {
  check_edge(e);
  auto& route = routes_[static_cast<std::size_t>(e)];
  BSA_REQUIRE(hop_index >= 0 &&
                  static_cast<std::size_t>(hop_index) < route.size(),
              "hop index " << hop_index << " out of range for message " << e);
  BSA_REQUIRE(time_le(start, finish), "hop with negative duration");
  auto& hop = route[static_cast<std::size_t>(hop_index)];
  auto& bookings = link_bookings_[static_cast<std::size_t>(hop.link)];
  const auto pos =
      std::find_if(bookings.begin(), bookings.end(), [&](const LinkBooking& b) {
        return b.edge == e && b.hop_index == hop_index;
      });
  BSA_ASSERT(pos != bookings.end(), "hop booking missing for message " << e);
  if (txn_ != nullptr) {
    txn_->records_.push_back(
        {Transaction::Op::kSetHopTimes, e, hop.link, hop_index,
         static_cast<std::int32_t>(pos - bookings.begin()), hop.start,
         hop.finish});
  }
  hop.start = start;
  hop.finish = finish;
  link_slots_[static_cast<std::size_t>(hop.link)].reset();
  pos->start = start;
  pos->finish = finish;
}

void Schedule::normalize_orders() {
  const auto task_lt = [&](TaskId a, TaskId b) {
    return placements_[static_cast<std::size_t>(a)].start <
           placements_[static_cast<std::size_t>(b)].start;
  };
  for (std::size_t p = 0; p < proc_tasks_.size(); ++p) {
    auto& order = proc_tasks_[p];
    // A stable sort of an already-sorted order is the identity; skipping
    // it keeps the common case cheap and the journal empty.
    if (std::is_sorted(order.begin(), order.end(), task_lt)) continue;
    if (txn_ != nullptr) {
      const std::size_t slot = txn_->orders_used_++;
      if (slot == txn_->order_snaps_.size()) txn_->order_snaps_.emplace_back();
      txn_->order_snaps_[slot] = order;
      txn_->records_.push_back({Transaction::Op::kOrderSnapshot,
                                static_cast<std::int32_t>(p), 0, 0,
                                static_cast<std::int32_t>(slot), 0, 0});
    }
    proc_slots_[p].reset();
    std::stable_sort(order.begin(), order.end(), task_lt);
  }
  const auto booking_lt = [](const LinkBooking& a, const LinkBooking& b) {
    return a.start < b.start;
  };
  for (std::size_t l = 0; l < link_bookings_.size(); ++l) {
    auto& bookings = link_bookings_[l];
    if (std::is_sorted(bookings.begin(), bookings.end(), booking_lt)) continue;
    if (txn_ != nullptr) {
      const std::size_t slot = txn_->bookings_used_++;
      if (slot == txn_->booking_snaps_.size()) {
        txn_->booking_snaps_.emplace_back();
      }
      txn_->booking_snaps_[slot] = bookings;
      txn_->records_.push_back({Transaction::Op::kBookingSnapshot,
                                static_cast<std::int32_t>(l), 0, 0,
                                static_cast<std::int32_t>(slot), 0, 0});
    }
    link_slots_[l].reset();
    std::stable_sort(bookings.begin(), bookings.end(), booking_lt);
  }
}

}  // namespace bsa::sched
