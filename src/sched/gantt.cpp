#include "sched/gantt.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace bsa::sched {

void print_listing(std::ostream& os, const Schedule& s) {
  const auto& g = s.task_graph();
  const auto& topo = s.topology();
  os << "schedule length = " << s.makespan() << "\n";
  for (ProcId p = 0; p < topo.num_processors(); ++p) {
    os << "P" << (p + 1) << ":";
    for (const TaskId t : s.tasks_on(p)) {
      os << ' ' << g.task_name(t) << "[" << s.start_of(t) << ","
         << s.finish_of(t) << ")";
    }
    os << '\n';
  }
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const auto& bookings = s.bookings_on(l);
    if (bookings.empty()) continue;
    const auto [a, b] = topo.link_endpoints(l);
    os << "L" << (a + 1) << (b + 1) << ":";
    for (const LinkBooking& bk : bookings) {
      os << ' ' << g.task_name(g.edge_src(bk.edge)) << "->"
         << g.task_name(g.edge_dst(bk.edge)) << "[" << bk.start << ","
         << bk.finish << ")";
    }
    os << '\n';
  }
}

std::string listing_to_string(const Schedule& s) {
  std::ostringstream os;
  print_listing(os, s);
  return os.str();
}

void print_gantt(std::ostream& os, const Schedule& s, int width) {
  BSA_REQUIRE(width >= 20, "gantt width too small: " << width);
  const auto& g = s.task_graph();
  const auto& topo = s.topology();
  const Time mk = s.makespan();
  if (mk <= 0) {
    os << "(empty schedule)\n";
    return;
  }
  const double scale = static_cast<double>(width) / mk;
  auto col = [&](Time t) {
    return std::min(width - 1,
                    std::max(0, static_cast<int>(t * scale)));
  };

  auto row_label = [&](const std::string& label) {
    os << std::left << std::setw(6) << label << '|';
  };

  for (ProcId p = 0; p < topo.num_processors(); ++p) {
    std::string row(static_cast<std::size_t>(width), ' ');
    for (const TaskId t : s.tasks_on(p)) {
      const int c0 = col(s.start_of(t));
      const int c1 = std::max(c0 + 1, col(s.finish_of(t)));
      for (int c = c0; c < c1 && c < width; ++c) {
        row[static_cast<std::size_t>(c)] = '=';
      }
      const std::string& name = g.task_name(t);
      for (std::size_t k = 0; k < name.size() && c0 + static_cast<int>(k) < c1;
           ++k) {
        row[static_cast<std::size_t>(c0) + k] = name[k];
      }
    }
    row_label("P" + std::to_string(p + 1));
    os << row << '\n';
  }
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const auto& bookings = s.bookings_on(l);
    if (bookings.empty()) continue;
    std::string row(static_cast<std::size_t>(width), ' ');
    for (const LinkBooking& bk : bookings) {
      const int c0 = col(bk.start);
      const int c1 = std::max(c0 + 1, col(bk.finish));
      for (int c = c0; c < c1 && c < width; ++c) {
        row[static_cast<std::size_t>(c)] = '#';
      }
    }
    const auto [a, b] = topo.link_endpoints(l);
    row_label("L" + std::to_string(a + 1) + std::to_string(b + 1));
    os << row << '\n';
  }
  row_label("t");
  std::ostringstream axis;
  axis << "0" << std::string(static_cast<std::size_t>(
                                 std::max(0, width - 12)),
                             ' ')
       << std::fixed << std::setprecision(0) << mk;
  os << axis.str() << '\n';
}

std::string gantt_to_string(const Schedule& s, int width) {
  std::ostringstream os;
  print_gantt(os, s, width);
  return os.str();
}

}  // namespace bsa::sched
