#include "sched/metrics.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace bsa::sched {

Time schedule_length_lower_bound(const graph::TaskGraph& g,
                                 const net::HeterogeneousCostModel& costs) {
  // Longest path of min-exec costs, ignoring communication entirely: no
  // schedule can beat it because every task runs at least its fastest
  // cost and chain order is forced.
  std::vector<Time> done(static_cast<std::size_t>(g.num_tasks()), 0);
  Time bound = 0;
  for (const TaskId t : g.topological_order()) {
    const auto ti = static_cast<std::size_t>(t);
    Time ready = 0;
    for (const EdgeId e : g.in_edges(t)) {
      ready = std::max(ready, done[static_cast<std::size_t>(g.edge_src(e))]);
    }
    done[ti] = ready + costs.min_exec_cost(t);
    bound = std::max(bound, done[ti]);
  }
  return bound;
}

ScheduleMetrics compute_metrics(const Schedule& s,
                                const net::HeterogeneousCostModel& costs) {
  BSA_REQUIRE(s.all_placed(), "metrics require a complete schedule");
  const auto& g = s.task_graph();
  const auto& topo = s.topology();
  ScheduleMetrics m;
  m.makespan = s.makespan();
  m.lower_bound = schedule_length_lower_bound(g, costs);
  m.best_serial = kInfiniteTime;
  for (ProcId p = 0; p < topo.num_processors(); ++p) {
    Time total = 0;
    for (TaskId t = 0; t < g.num_tasks(); ++t) total += costs.exec_cost(t, p);
    m.best_serial = std::min(m.best_serial, total);
  }
  if (m.makespan > 0) {
    m.speedup = m.best_serial / m.makespan;
    if (m.lower_bound > 0) m.slr = m.makespan / m.lower_bound;
  }

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& route = s.route_of(e);
    if (route.empty()) continue;
    ++m.num_crossing_messages;
    m.total_hops += static_cast<int>(route.size());
  }

  Time proc_busy = 0;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    proc_busy += s.finish_of(t) - s.start_of(t);
  }
  if (m.makespan > 0) {
    m.avg_proc_utilization =
        proc_busy / (m.makespan * topo.num_processors());
  }

  Time total_link_busy = 0;
  double max_util = 0;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    Time busy = 0;
    for (const LinkBooking& b : s.bookings_on(l)) busy += b.finish - b.start;
    total_link_busy += busy;
    if (m.makespan > 0) {
      max_util = std::max(max_util, busy / m.makespan);
    }
  }
  m.total_link_busy = total_link_busy;
  m.max_link_utilization = max_util;
  if (m.makespan > 0 && topo.num_links() > 0) {
    m.avg_link_utilization =
        total_link_busy / (m.makespan * topo.num_links());
  }
  return m;
}

}  // namespace bsa::sched
