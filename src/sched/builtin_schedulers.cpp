#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/dls.hpp"
#include "baselines/eft.hpp"
#include "baselines/mh.hpp"
#include "core/bsa.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/rank_schedulers.hpp"
#include "sched/sa.hpp"
#include "sched/scheduler.hpp"

/// \file builtin_schedulers.cpp
/// Adapters that put the library's algorithms — BSA, the DLS, MH and EFT
/// baselines, the HEFT/PEFT rank schedulers and the simulated-annealing
/// refiner — behind the unified sched::Scheduler interface, and their
/// registration with the global SchedulerRegistry. The existing free
/// functions (core::schedule_bsa, baselines::schedule_*,
/// sched::schedule_heft/peft, sched::anneal_schedule) remain the
/// implementation and keep their white-box result structs; the adapters
/// only translate options and package results.

namespace bsa::sched {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& t0) {
  // lint:allow(wall-clock): phase wall-time reporting only, never a result
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Canonical specs are assembled by the shared bsa::canonical_spec
// (common/spec.hpp) — non-default options only, sorted by key.
using bsa::canonical_spec;

// --- BSA --------------------------------------------------------------------

class BsaScheduler final : public Scheduler {
 public:
  explicit BsaScheduler(const SpecOptions& opts) {
    const std::string gate = opts.get_choice("gate", {"paper", "always"},
                                             "paper");
    options_.gate = gate == "always" ? core::GateRule::kAlwaysConsider
                                     : core::GateRule::kPaper;
    const std::string policy =
        opts.get_choice("policy", {"guarded", "greedy"}, "guarded");
    options_.policy = policy == "greedy" ? core::MigrationPolicy::kTaskGreedy
                                         : core::MigrationPolicy::kMakespanGuarded;
    const std::string route = opts.get_choice(
        "route", {"incremental", "static", "ecube"}, "incremental");
    options_.routing = route == "static"
                           ? core::RouteDiscipline::kStaticShortestPath
                       : route == "ecube" ? core::RouteDiscipline::kEcube
                                          : core::RouteDiscipline::kIncremental;
    const std::string serial =
        opts.get_choice("serial", {"cpibob", "blevel"}, "cpibob");
    options_.serialization = serial == "blevel"
                                 ? core::SerializationRule::kBLevel
                                 : core::SerializationRule::kCpIbOb;
    options_.max_sweeps = opts.get_int("sweeps", 1, 1);
    options_.vip_rule = opts.get_flag("vip", true);
    options_.prune_route_cycles = opts.get_flag("prune", false);
    const std::string slots =
        opts.get_choice("slots", {"insert", "append"}, "insert");
    options_.insertion_slots = slots == "insert";
    const std::string retime =
        opts.get_choice("retime", {"incremental", "rebuild"}, "incremental");
    options_.incremental_retime = retime == "incremental";
    const std::string rollback =
        opts.get_choice("rollback", {"txn", "snapshot"}, "txn");
    options_.snapshot_rollback = rollback == "snapshot";
    const std::string eval =
        opts.get_choice("eval", {"pooled", "fresh"}, "pooled");
    options_.pooled_eval = eval == "pooled";
    if (opts.has("seed")) pinned_seed_ = opts.get_uint64("seed", 0);

    std::vector<std::string> parts;  // alphabetical by key
    if (eval != "pooled") parts.push_back("eval=" + eval);
    if (gate != "paper") parts.push_back("gate=" + gate);
    if (policy != "guarded") parts.push_back("policy=" + policy);
    if (options_.prune_route_cycles) parts.push_back("prune=on");
    if (retime != "incremental") parts.push_back("retime=" + retime);
    if (rollback != "txn") parts.push_back("rollback=" + rollback);
    if (route != "incremental") parts.push_back("route=" + route);
    if (pinned_seed_.has_value()) {
      parts.push_back("seed=" + std::to_string(*pinned_seed_));
    }
    if (serial != "cpibob") parts.push_back("serial=" + serial);
    if (slots != "insert") parts.push_back("slots=" + slots);
    if (options_.max_sweeps != 1) {
      parts.push_back("sweeps=" + std::to_string(options_.max_sweeps));
    }
    if (!options_.vip_rule) parts.push_back("vip=off");
    spec_ = canonical_spec("bsa", std::move(parts));
  }

  [[nodiscard]] std::string spec() const override { return spec_; }
  [[nodiscard]] std::string display_name() const override { return "BSA"; }

  [[nodiscard]] SchedulerResult run(const graph::TaskGraph& g,
                                    const net::Topology& topo,
                                    const net::HeterogeneousCostModel& costs,
                                    std::uint64_t seed) const override {
    return run_impl(g, topo, costs, seed, obs::Hooks{});
  }

  [[nodiscard]] SchedulerResult run_observed(
      const graph::TaskGraph& g, const net::Topology& topo,
      const net::HeterogeneousCostModel& costs, std::uint64_t seed,
      const obs::Hooks& hooks) const override {
    obs::Span span(hooks.tracer, spec(), "sched", hooks.trace_tid);
    return run_impl(g, topo, costs, seed, hooks);
  }

 private:
  [[nodiscard]] SchedulerResult run_impl(
      const graph::TaskGraph& g, const net::Topology& topo,
      const net::HeterogeneousCostModel& costs, std::uint64_t seed,
      const obs::Hooks& hooks) const {
    core::BsaOptions opt = options_;
    opt.seed = pinned_seed_.value_or(seed);
    opt.obs = hooks;
    // lint:allow(wall-clock): phase wall-time reporting only, never a result
    const auto t0 = Clock::now();
    core::BsaResult r = core::schedule_bsa(g, topo, costs, opt);
    const double ms = ms_since(t0);
    SchedulerResult out(std::move(r.schedule));
    out.phase_ms = {{"schedule", ms}};

    const core::BsaTrace& t = r.trace;
    std::int64_t vip = 0;
    for (const core::Migration& m : t.migrations) vip += m.via_vip_rule;
    obs::Registry reg;
    reg.add("bsa.migrations", static_cast<std::int64_t>(t.migrations.size()));
    reg.add("bsa.migrations_vip", vip);
    reg.add("bsa.pivots", static_cast<std::int64_t>(t.pivot_sequence.size()));
    reg.add("bsa.considered", t.considered);
    reg.add("bsa.gate_skips", t.gate_skips);
    reg.add("bsa.rejected.makespan_guard", t.rejected_migrations);
    reg.add("bsa.rejected.no_gain", t.rejected_no_gain);
    reg.add("bsa.replay_fallbacks", t.replay_fallbacks);
    // Serial lengths are integral by the cost model's construction
    // (integer factor x integer nominal cost), so the counter is exact.
    reg.add("bsa.initial_serial_length",
            static_cast<std::int64_t>(t.initial_serial_length));
    reg.add("bsa.retime.nodes_recomputed", t.retime.nodes_recomputed);
    reg.add("bsa.retime.migrations", t.retime.migrations);
    reg.add("bsa.retime.resyncs", t.retime.resyncs);
    reg.add("bsa.retime.undos", t.retime.undos);
    reg.add("bsa.retime.full_rebuilds", t.retime.full_rebuilds);
    reg.add("bsa.txn.journal_hwm", t.txn_journal_hwm);
    reg.add("bsa.txn.journal_records", t.txn_journal_records);
    reg.add("bsa.slot_index_builds", t.slot_index_builds);
    reg.add("bsa.eval.edge_epochs", t.eval_edge_epochs);
    reg.add("bsa.eval.link_epochs", t.eval_link_epochs);
    out.counters = reg.snapshot();
    audit_result(out.schedule, costs, spec());
    return out;
  }

  core::BsaOptions options_;
  std::optional<std::uint64_t> pinned_seed_;
  std::string spec_;
};

// --- DLS --------------------------------------------------------------------

class DlsScheduler final : public Scheduler {
 public:
  explicit DlsScheduler(const SpecOptions& opts)
      : seed_(opts.get_uint64("seed", 0)) {
    std::vector<std::string> parts;
    if (seed_ != 0) parts.push_back("seed=" + std::to_string(seed_));
    spec_ = canonical_spec("dls", std::move(parts));
  }

  [[nodiscard]] std::string spec() const override { return spec_; }
  [[nodiscard]] std::string display_name() const override { return "DLS"; }

  [[nodiscard]] SchedulerResult run(const graph::TaskGraph& g,
                                    const net::Topology& topo,
                                    const net::HeterogeneousCostModel& costs,
                                    std::uint64_t /*seed*/) const override {
    // The caller seed is deliberately ignored: the default DLS is fully
    // deterministic (ties towards smaller ids, as in the legacy enum
    // dispatch); randomised tie-breaking is opted into by pinning seed=.
    baselines::DlsOptions opt;
    opt.seed = seed_;
    // lint:allow(wall-clock): phase wall-time reporting only, never a result
    const auto t0 = Clock::now();
    baselines::DlsResult r = baselines::schedule_dls(g, topo, costs, opt);
    const double ms = ms_since(t0);
    Cost max_sl = 0;
    for (const Cost sl : r.static_levels) max_sl = std::max(max_sl, sl);
    SchedulerResult out(std::move(r.schedule));
    out.phase_ms = {{"schedule", ms}};
    // Static levels are integral sums of integral costs — exact as a
    // counter.
    out.counters = {{"dls.max_static_level", static_cast<std::int64_t>(max_sl)}};
    audit_result(out.schedule, costs, spec());
    return out;
  }

 private:
  std::uint64_t seed_;
  std::string spec_;
};

// --- EFT / MH ---------------------------------------------------------------

class EftScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string spec() const override { return "eft"; }
  [[nodiscard]] std::string display_name() const override {
    return "EFT (oblivious)";
  }

  [[nodiscard]] SchedulerResult run(const graph::TaskGraph& g,
                                    const net::Topology& topo,
                                    const net::HeterogeneousCostModel& costs,
                                    std::uint64_t /*seed*/) const override {
    // lint:allow(wall-clock): phase wall-time reporting only, never a result
    const auto t0 = Clock::now();
    baselines::EftResult r = baselines::schedule_eft_oblivious(g, topo, costs);
    const double ms = ms_since(t0);
    SchedulerResult out(std::move(r.schedule));
    out.phase_ms = {{"schedule", ms}};
    audit_result(out.schedule, costs, spec());
    return out;
  }
};

class MhScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string spec() const override { return "mh"; }
  [[nodiscard]] std::string display_name() const override { return "MH"; }

  [[nodiscard]] SchedulerResult run(const graph::TaskGraph& g,
                                    const net::Topology& topo,
                                    const net::HeterogeneousCostModel& costs,
                                    std::uint64_t /*seed*/) const override {
    // lint:allow(wall-clock): phase wall-time reporting only, never a result
    const auto t0 = Clock::now();
    baselines::MhResult r = baselines::schedule_mh(g, topo, costs);
    const double ms = ms_since(t0);
    SchedulerResult out(std::move(r.schedule));
    out.phase_ms = {{"schedule", ms}};
    audit_result(out.schedule, costs, spec());
    return out;
  }
};

// --- HEFT / PEFT ------------------------------------------------------------

class HeftScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string spec() const override { return "heft"; }
  [[nodiscard]] std::string display_name() const override { return "HEFT"; }

  [[nodiscard]] SchedulerResult run(const graph::TaskGraph& g,
                                    const net::Topology& topo,
                                    const net::HeterogeneousCostModel& costs,
                                    std::uint64_t /*seed*/) const override {
    // lint:allow(wall-clock): phase wall-time reporting only, never a result
    const auto t0 = Clock::now();
    RankScheduleResult r = schedule_heft(g, topo, costs);
    const double ms = ms_since(t0);
    SchedulerResult out(std::move(r.schedule));
    out.phase_ms = {{"schedule", ms}};
    audit_result(out.schedule, costs, spec());
    return out;
  }
};

class PeftScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string spec() const override { return "peft"; }
  [[nodiscard]] std::string display_name() const override { return "PEFT"; }

  [[nodiscard]] SchedulerResult run(const graph::TaskGraph& g,
                                    const net::Topology& topo,
                                    const net::HeterogeneousCostModel& costs,
                                    std::uint64_t /*seed*/) const override {
    // lint:allow(wall-clock): phase wall-time reporting only, never a result
    const auto t0 = Clock::now();
    RankScheduleResult r = schedule_peft(g, topo, costs);
    const double ms = ms_since(t0);
    SchedulerResult out(std::move(r.schedule));
    out.phase_ms = {{"schedule", ms}};
    audit_result(out.schedule, costs, spec());
    return out;
  }
};

// --- SA ---------------------------------------------------------------------

class SaScheduler final : public Scheduler {
 public:
  explicit SaScheduler(const SpecOptions& opts) {
    const std::string init = opts.get_choice(
        "init", {"heft", "peft", "bsa", "dls", "eft", "mh"}, "heft");
    options_.iters = opts.get_int("iters", 100, 0);
    options_.temp0 = opts.get_double("temp0", 0.05, 0.0);
    if (opts.has("seed")) pinned_seed_ = opts.get_uint64("seed", 0);
    // Factories run at resolve time, after the registry is fully built,
    // so resolving the init scheduler here cannot recurse into
    // registration. "sa" is not an accepted init, so no self-nesting.
    init_ = SchedulerRegistry::global().resolve(init);

    std::vector<std::string> parts;  // alphabetical by key
    if (init != "heft") parts.push_back("init=" + init);
    if (options_.iters != 100) {
      parts.push_back("iters=" + std::to_string(options_.iters));
    }
    if (pinned_seed_.has_value()) {
      parts.push_back("seed=" + std::to_string(*pinned_seed_));
    }
    if (options_.temp0 != 0.05) {
      parts.push_back("temp0=" + bsa::canonical_double(options_.temp0));
    }
    spec_ = canonical_spec("sa", std::move(parts));
  }

  [[nodiscard]] std::string spec() const override { return spec_; }
  [[nodiscard]] std::string display_name() const override { return "SA"; }

  [[nodiscard]] SchedulerResult run(const graph::TaskGraph& g,
                                    const net::Topology& topo,
                                    const net::HeterogeneousCostModel& costs,
                                    std::uint64_t seed) const override {
    return run_impl(g, topo, costs, seed);
  }

  [[nodiscard]] SchedulerResult run_observed(
      const graph::TaskGraph& g, const net::Topology& topo,
      const net::HeterogeneousCostModel& costs, std::uint64_t seed,
      const obs::Hooks& hooks) const override {
    obs::Span span(hooks.tracer, spec(), "sched", hooks.trace_tid);
    return run_impl(g, topo, costs, seed);
  }

 private:
  [[nodiscard]] SchedulerResult run_impl(
      const graph::TaskGraph& g, const net::Topology& topo,
      const net::HeterogeneousCostModel& costs, std::uint64_t seed) const {
    const std::uint64_t eff = pinned_seed_.value_or(seed);
    // lint:allow(wall-clock): phase wall-time reporting only, never a result
    auto t0 = Clock::now();
    SchedulerResult ir = init_->run(g, topo, costs, eff);
    const double init_ms = ms_since(t0);
    SaOptions opt = options_;
    opt.seed = eff;
    // lint:allow(wall-clock): phase wall-time reporting only, never a result
    t0 = Clock::now();
    SaResult r = anneal_schedule(ir.schedule, costs, opt);
    const double anneal_ms = ms_since(t0);

    SchedulerResult out(std::move(r.schedule));
    out.phase_ms = {{"init", init_ms}, {"anneal", anneal_ms}};
    obs::Registry reg;
    reg.merge(ir.counters);  // the init run's counters ride along
    reg.add("sa.proposed", r.proposed);
    reg.add("sa.accepted", r.accepted);
    reg.add("sa.accepted_worse", r.accepted_worse);
    reg.add("sa.best_updates", r.best_updates);
    reg.add("sa.replay_fallbacks", r.replay_fallbacks);
    out.counters = reg.snapshot();
    audit_result(out.schedule, costs, spec());
    return out;
  }

  SaOptions options_;
  std::optional<std::uint64_t> pinned_seed_;
  std::unique_ptr<Scheduler> init_;
  std::string spec_;
};

}  // namespace

void register_builtin_schedulers(SchedulerRegistry& registry) {
  using OptionDoc = SchedulerRegistry::OptionDoc;
  registry.add({
      "bsa",
      "BSA",
      "Bubble Scheduling and Allocation (the paper's algorithm)",
      {
          OptionDoc{"eval", "pooled|fresh", "pooled",
                    "scratch-arena vs per-call-allocating neighbour "
                    "evaluation (bit-identical)"},
          OptionDoc{"gate", "paper|always", "paper",
                    "which pivot tasks are examined for migration"},
          OptionDoc{"policy", "guarded|greedy", "guarded",
                    "makespan-guarded vs literal task-greedy migration"},
          OptionDoc{"prune", "on|off", "off",
                    "cut cycles out of hop-extended message routes"},
          OptionDoc{"retime", "incremental|rebuild", "incremental",
                    "incremental RetimeContext vs full rebuild per migration"},
          OptionDoc{"rollback", "txn|snapshot", "txn",
                    "guarded-migration rollback: journaled transaction vs "
                    "whole-schedule snapshot (bit-identical)"},
          OptionDoc{"route", "incremental|static|ecube", "incremental",
                    "message route discipline"},
          OptionDoc{"seed", "unsigned integer", "(caller seed)",
                    "pin the critical-path tie-breaking seed"},
          OptionDoc{"serial", "cpibob|blevel", "cpibob",
                    "serial-injection order"},
          OptionDoc{"slots", "insert|append", "insert",
                    "insertion-based vs append-only slot search"},
          OptionDoc{"sweeps", "integer >= 1", "1",
                    "breadth-first pivot sweeps"},
          OptionDoc{"vip", "on|off", "on",
                    "equal-finish-time VIP migration rule"},
      },
      [](const SpecOptions& opts) -> std::unique_ptr<Scheduler> {
        return std::make_unique<BsaScheduler>(opts);
      },
  });
  registry.add({
      "dls",
      "DLS",
      "Dynamic Level Scheduling (Sih & Lee), the paper's comparison",
      {
          OptionDoc{"seed", "unsigned integer", "0",
                    "non-zero randomises dynamic-level tie-breaking"},
      },
      [](const SpecOptions& opts) -> std::unique_ptr<Scheduler> {
        return std::make_unique<DlsScheduler>(opts);
      },
  });
  registry.add({
      "eft",
      "EFT (oblivious)",
      "contention-oblivious earliest-finish-time list scheduler",
      {},
      [](const SpecOptions&) -> std::unique_ptr<Scheduler> {
        return std::make_unique<EftScheduler>();
      },
  });
  registry.add({
      "mh",
      "MH",
      "Mapping-Heuristic-style contention-aware list scheduler",
      {},
      [](const SpecOptions&) -> std::unique_ptr<Scheduler> {
        return std::make_unique<MhScheduler>();
      },
  });
  registry.add({
      "heft",
      "HEFT",
      "upward-rank list scheduler (Topcuoglu et al.) with contended routing",
      {},
      [](const SpecOptions&) -> std::unique_ptr<Scheduler> {
        return std::make_unique<HeftScheduler>();
      },
  });
  registry.add({
      "peft",
      "PEFT",
      "optimistic-cost-table list scheduler (Arabnejad & Barbosa) with "
      "contended routing",
      {},
      [](const SpecOptions&) -> std::unique_ptr<Scheduler> {
        return std::make_unique<PeftScheduler>();
      },
  });
  registry.add({
      "sa",
      "SA",
      "simulated-annealing refinement of an init scheduler's result "
      "(transactional O(touched) move evaluation)",
      {
          OptionDoc{"init", "heft|peft|bsa|dls|eft|mh", "heft",
                    "scheduler whose result is refined"},
          OptionDoc{"iters", "integer >= 0", "100",
                    "proposed migration moves (0 returns the init schedule "
                    "bit-identically)"},
          OptionDoc{"seed", "unsigned integer", "(caller seed)",
                    "pin the move/acceptance stream (also passed to init)"},
          OptionDoc{"temp0", "float > 0", "0.05",
                    "initial temperature as a fraction of the init makespan"},
      },
      [](const SpecOptions& opts) -> std::unique_ptr<Scheduler> {
        return std::make_unique<SaScheduler>(opts);
      },
  });
}

}  // namespace bsa::sched
