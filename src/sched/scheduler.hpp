#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/spec.hpp"
#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "obs/counters.hpp"
#include "obs/hooks.hpp"
#include "sched/schedule.hpp"

/// \file scheduler.hpp
/// The unified scheduling surface: a polymorphic Scheduler interface and
/// a process-wide registry that resolves *spec strings* into configured
/// scheduler instances.
///
/// Spec grammar (names, keys and values are case-insensitive; shared with
/// the workload registry via common/spec.hpp — full reference:
/// docs/SPECS.md):
///
///   spec    := name [ ":" option ("," option)* ]
///   option  := key "=" value
///
///   "bsa"                                  default BSA
///   "bsa:gate=always,route=static"         BSA ablation variant
///   "dls:seed=7"                           DLS with randomised tie-breaks
///
/// The canonical form of a spec is the lowercase name followed by the
/// non-default options sorted by key with canonical value spellings —
/// `SchedulerRegistry::canonical` round-trips any accepted spec to it.
/// Everything that dispatches on an algorithm (experiment sweeps, figure
/// benches, bsa_tool, JSONL sinks) goes through this surface; adding an
/// algorithm means registering one factory, not widening an enum in four
/// drivers (see docs/DESIGN_API.md).
///
/// Contracts relied on by the parallel runtime:
///  * determinism — resolving the same spec twice yields instances whose
///    run() produces bit-identical schedules for identical inputs and
///    seeds, at any thread count;
///  * thread-safety — Scheduler instances are immutable after
///    construction and one instance may serve concurrent run() calls;
///    SchedulerRegistry::global() is initialised once and only read
///    afterwards, so lookups need no locking.

namespace bsa::sched {

/// Outcome of one Scheduler::run: the schedule plus uniform metadata.
struct SchedulerResult {
  explicit SchedulerResult(Schedule s) : schedule(std::move(s)) {}

  Schedule schedule;
  /// Wall-clock time per algorithm phase, in execution order. Every
  /// scheduler reports at least {"schedule", <total ms>}.
  std::vector<std::pair<std::string, double>> phase_ms;
  /// Deterministic algorithm counters (e.g. "bsa.migrations"), sorted by
  /// name — an obs::Registry snapshot, uniform to log and to aggregate,
  /// no per-algorithm result types. Counters are a pure function of the
  /// run's inputs, never of timing, so they are bit-identical at any
  /// thread count (counter taxonomy: docs/DESIGN_OBS.md).
  obs::CounterSnapshot counters;

  [[nodiscard]] Time makespan() const { return schedule.makespan(); }
  [[nodiscard]] double total_ms() const {
    double sum = 0;
    for (const auto& [_, ms] : phase_ms) sum += ms;
    return sum;
  }
};

/// A configured scheduling algorithm. Instances are immutable and
/// thread-safe: one instance may serve concurrent run() calls (the
/// parallel sweep runtime relies on this).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Canonical spec string ("bsa", "bsa:gate=always", ...). Feeding this
  /// back through SchedulerRegistry::resolve reproduces the instance.
  [[nodiscard]] virtual std::string spec() const = 0;

  /// Human display name of the algorithm family ("BSA", "DLS", ...).
  [[nodiscard]] virtual std::string display_name() const = 0;

  /// Label for tables and reports: the display name for a default
  /// configuration, the canonical spec for a variant.
  [[nodiscard]] std::string display_label() const;

  /// Schedule `g` onto `topo` under `costs`. `seed` is the caller's
  /// tie-breaking seed (experiment sweeps derive it per instance); a
  /// spec-pinned `seed=` option takes precedence where supported.
  [[nodiscard]] virtual SchedulerResult run(
      const graph::TaskGraph& g, const net::Topology& topo,
      const net::HeterogeneousCostModel& costs,
      std::uint64_t seed = 0) const = 0;

  /// run() with observability hooks attached. The default implementation
  /// wraps run() in one whole-run span named after the algorithm;
  /// schedulers with internal instrumentation (BSA) override it to
  /// thread the hooks into their phases and decision points. Hooks only
  /// observe: for any hooks, run_observed computes the same result as
  /// run(), and with default (null) hooks it costs one branch.
  [[nodiscard]] virtual SchedulerResult run_observed(
      const graph::TaskGraph& g, const net::Topology& topo,
      const net::HeterogeneousCostModel& costs, std::uint64_t seed,
      const obs::Hooks& hooks) const;
};

/// --- post-run auditing (the dynamic backstop of the static wall) -------
///
/// When auditing is enabled, every built-in Scheduler adapter passes its
/// finished schedule through sched::validate() and throws InvariantError
/// on any violation — so a scheduling bug fails the run that produced it
/// instead of poisoning downstream tables. The default is the BSA_AUDIT
/// compile option (on in the CI audit job, off in release builds, where
/// validation would roughly double small-run cost); tests flip it at
/// runtime. Reading the flag is one relaxed atomic load per run.
void set_audit(bool on) noexcept;
[[nodiscard]] bool audit_enabled() noexcept;

/// Validate `s` and throw InvariantError listing every violation when
/// auditing is enabled; no-op otherwise. `label` names the producing
/// algorithm in the message (adapters pass their canonical spec).
void audit_result(const Schedule& s, const net::HeterogeneousCostModel& costs,
                  const std::string& label);

/// The spec grammar (ParsedSpec, SpecOptions, canonicalisation helpers)
/// is shared with the workload registry — see common/spec.hpp. The sched
/// aliases keep existing call sites (`sched::parse_spec`, ...) working.
using bsa::ascii_lower;
using bsa::ParsedSpec;
using bsa::SpecOptions;

/// Parse a scheduler spec string. Throws PreconditionError on grammar
/// errors (empty name, missing '=', duplicate keys, stray separators).
[[nodiscard]] inline ParsedSpec parse_spec(const std::string& spec) {
  return bsa::parse_spec(spec, "scheduler");
}

/// Registry of named scheduler factories. `global()` holds the built-in
/// algorithms (bsa, dls, eft, mh, heft, peft, sa); local instances can be
/// built in tests.
class SchedulerRegistry {
 public:
  /// Documentation of one accepted option, used for error messages,
  /// `--help`-style listings and DESIGN_API.md examples.
  struct OptionDoc {
    std::string name;
    std::string values;         ///< e.g. "paper|always" or "integer >= 1"
    std::string default_value;  ///< canonical default spelling
    std::string summary;
  };

  using Factory = std::function<std::unique_ptr<Scheduler>(const SpecOptions&)>;

  struct Entry {
    std::string name;          ///< canonical lowercase registry name
    std::string display_name;  ///< e.g. "EFT (oblivious)"
    std::string summary;       ///< one-line description
    std::vector<OptionDoc> options;
    Factory factory;
  };

  /// Register an algorithm. Throws on duplicate or non-canonical names.
  void add(Entry entry);

  /// Resolve a spec string into a configured scheduler. Unknown names
  /// and unknown option keys throw PreconditionError messages listing
  /// the registered names / the algorithm's valid options.
  [[nodiscard]] std::unique_ptr<Scheduler> resolve(
      const std::string& spec) const;

  /// Canonical form of `spec` (resolve + Scheduler::spec).
  [[nodiscard]] std::string canonical(const std::string& spec) const;

  /// Table/report label for `spec` (resolve + Scheduler::display_label).
  [[nodiscard]] std::string display_label(const std::string& spec) const;

  /// Registered names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Split a comma-separated list of specs, e.g. a CLI `--algo` value.
  /// Variant options themselves use commas ("bsa:gate=always,route=static"),
  /// so a comma token of the form key=value whose key is not a registered
  /// scheduler name continues the preceding spec instead of starting a
  /// new one. The returned specs are not yet validated — feed them to
  /// resolve/canonical.
  [[nodiscard]] std::vector<std::string> split_spec_list(
      const std::string& text) const;

  /// Entry for `name` (case-insensitive), or nullptr.
  [[nodiscard]] const Entry* find(const std::string& name) const;

  /// The process-wide registry, populated with the built-in algorithms.
  [[nodiscard]] static const SchedulerRegistry& global();

 private:
  std::vector<Entry> entries_;
};

/// Register the built-in algorithms (bsa, dls, eft, mh, heft, peft, sa) —
/// defined in builtin_schedulers.cpp, invoked once by
/// SchedulerRegistry::global().
void register_builtin_schedulers(SchedulerRegistry& registry);

}  // namespace bsa::sched
