#include "sched/event_sim.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace bsa::sched {

SimulationResult simulate_execution(const Schedule& s,
                                    const net::HeterogeneousCostModel& costs) {
  const auto& g = s.task_graph();
  const auto& topo = s.topology();
  SimulationResult result;
  result.task_start.assign(static_cast<std::size_t>(g.num_tasks()), kUnsetTime);
  result.task_finish.assign(static_cast<std::size_t>(g.num_tasks()),
                            kUnsetTime);
  BSA_REQUIRE(s.all_placed(), "simulation requires a complete schedule");

  // Per-edge hop completion times (kUnsetTime = not yet transmitted).
  std::vector<std::vector<Time>> hop_finish(
      static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    hop_finish[static_cast<std::size_t>(e)].assign(s.route_of(e).size(),
                                                   kUnsetTime);
  }

  std::vector<std::size_t> proc_head(
      static_cast<std::size_t>(topo.num_processors()), 0);
  std::vector<std::size_t> link_head(
      static_cast<std::size_t>(topo.num_links()), 0);

  // Arrival time of message e at the destination task's processor, or
  // kUnsetTime when not yet arrived.
  auto message_arrival = [&](EdgeId e) -> Time {
    const auto& route = s.route_of(e);
    if (route.empty()) {
      return result.task_finish[static_cast<std::size_t>(g.edge_src(e))];
    }
    return hop_finish[static_cast<std::size_t>(e)].back();
  };

  int remaining_tasks = g.num_tasks();
  std::size_t remaining_hops = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    remaining_hops += s.route_of(e).size();
  }

  // Fixed-point sweep: repeatedly try to start head-of-queue items whose
  // inputs are available. Each outer iteration executes at least one item
  // or reports deadlock, so the loop terminates.
  bool progress = true;
  while ((remaining_tasks > 0 || remaining_hops > 0) && progress) {
    progress = false;
    // Tasks.
    for (ProcId p = 0; p < topo.num_processors(); ++p) {
      const auto& order = s.tasks_on(p);
      auto& head = proc_head[static_cast<std::size_t>(p)];
      while (head < order.size()) {
        const TaskId t = order[head];
        Time drt = 0;
        bool ok = true;
        for (const EdgeId e : g.in_edges(t)) {
          const Time arr = message_arrival(e);
          if (arr == kUnsetTime) {
            ok = false;
            break;
          }
          drt = std::max(drt, arr);
        }
        if (!ok) break;
        const Time prev_done =
            head == 0
                ? Time{0}
                : result.task_finish[static_cast<std::size_t>(order[head - 1])];
        const Time st = std::max(drt, prev_done);
        result.task_start[static_cast<std::size_t>(t)] = st;
        result.task_finish[static_cast<std::size_t>(t)] =
            st + costs.exec_cost(t, p);
        ++head;
        --remaining_tasks;
        progress = true;
      }
    }
    // Message hops.
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const auto& queue = s.bookings_on(l);
      auto& head = link_head[static_cast<std::size_t>(l)];
      while (head < queue.size()) {
        const LinkBooking& b = queue[head];
        // Payload availability: previous hop of the same route, or the
        // source task's completion for the first hop.
        Time avail = kUnsetTime;
        if (b.hop_index == 0) {
          avail = result.task_finish[static_cast<std::size_t>(
              g.edge_src(b.edge))];
        } else {
          avail = hop_finish[static_cast<std::size_t>(b.edge)]
                            [static_cast<std::size_t>(b.hop_index - 1)];
        }
        if (avail == kUnsetTime) break;
        const Time link_free =
            head == 0 ? Time{0}
                      : [&] {
                          const LinkBooking& prev = queue[head - 1];
                          return hop_finish[static_cast<std::size_t>(prev.edge)]
                                           [static_cast<std::size_t>(
                                               prev.hop_index)];
                        }();
        const Time st = std::max(avail, link_free);
        hop_finish[static_cast<std::size_t>(b.edge)]
                  [static_cast<std::size_t>(b.hop_index)] =
                      st + costs.comm_cost(b.edge, l);
        ++head;
        --remaining_hops;
        progress = true;
      }
    }
  }

  if (remaining_tasks > 0 || remaining_hops > 0) {
    result.completed = false;
    result.error = "deadlock: " + std::to_string(remaining_tasks) +
                   " tasks and " + std::to_string(remaining_hops) +
                   " hops cannot execute under the given orders";
    return result;
  }
  result.completed = true;
  for (const Time ft : result.task_finish) {
    result.makespan = std::max(result.makespan, ft);
  }
  return result;
}

bool simulation_matches(const Schedule& s, const SimulationResult& result) {
  if (!result.completed) return false;
  const auto& g = s.task_graph();
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (!time_eq(result.task_start[ti], s.start_of(t))) return false;
    if (!time_eq(result.task_finish[ti], s.finish_of(t))) return false;
  }
  return true;
}

}  // namespace bsa::sched
