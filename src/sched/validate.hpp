#pragma once

#include <string>
#include <vector>

#include "network/cost_model.hpp"
#include "sched/schedule.hpp"

/// \file validate.hpp
/// Full invariant checking for schedules. Used by tests, by property
/// sweeps, and (in debug builds) by the algorithms after every run.
///
/// A schedule is *valid* when:
///  1. every task is placed exactly once with finish = start + actual cost;
///  2. tasks on one processor never overlap in time;
///  3. precedence holds: a task starts no earlier than the arrival of
///     every incoming message (same-processor messages arrive at the
///     predecessor's finish);
///  4. every inter-processor message has a contiguous route from the
///     source's processor to the destination's processor; hop k+1 starts
///     no earlier than hop k finishes (store-and-forward); the first hop
///     starts no earlier than the source finishes; hop durations equal the
///     actual communication cost on that hop's link;
///  5. messages on one link never overlap (link exclusivity — the paper's
///     contention constraint);
///  6. link bookings mirror routes exactly.

namespace bsa::sched {

struct ValidationReport {
  std::vector<std::string> issues;
  [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
  /// All issues joined with newlines ("valid" when empty).
  [[nodiscard]] std::string to_string() const;
};

/// Validate `s` against its graph/topology and the cost model that
/// produced it. Collects all violations instead of stopping at the first.
[[nodiscard]] ValidationReport validate(
    const Schedule& s, const net::HeterogeneousCostModel& costs);

}  // namespace bsa::sched
