#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"

/// \file gantt.hpp
/// Human-readable schedule rendering: a textual listing (exact times) and
/// an ASCII Gantt chart in the style of the paper's Figure 2, with one row
/// per processor and one row per link.

namespace bsa::sched {

/// Exact listing: per-processor task sequences with [start, finish) and
/// per-link message sequences ("T1->T3 [7,17)" style, 1-based task names).
void print_listing(std::ostream& os, const Schedule& s);
[[nodiscard]] std::string listing_to_string(const Schedule& s);

/// ASCII Gantt chart scaled to `width` character columns. Processor rows
/// show task names; link rows show '#' for busy periods.
void print_gantt(std::ostream& os, const Schedule& s, int width = 96);
[[nodiscard]] std::string gantt_to_string(const Schedule& s, int width = 96);

}  // namespace bsa::sched
