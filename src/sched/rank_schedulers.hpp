#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/task_graph.hpp"
#include "network/cost_model.hpp"
#include "network/topology.hpp"
#include "sched/schedule.hpp"

/// \file rank_schedulers.hpp
/// HEFT and PEFT: the rank-based list-scheduling baselines the
/// heterogeneous-scheduling literature compares against (Topcuoglu et
/// al. 2002; Arabnejad & Barbosa 2014). Both compute a static per-task
/// rank on the heterogeneous cost model, then place tasks one at a time
/// into their earliest insertion-based slot, routing every incoming
/// message through the contended link-booking path shared with the
/// other list baselines (baselines::incoming_data_ready) — so unlike
/// the textbook formulations these schedules are link
/// contention-constrained, matching the rest of the library.
///
/// Rank definitions (averages over the *actual* heterogeneous costs):
///  * HEFT upward rank:
///      rank_u(t) = wbar(t) + max over edges (t,j) of (cbar(t,j) + rank_u(j))
///    with wbar(t) the mean exec cost over processors and cbar(e) the
///    mean comm cost over links (exit tasks: rank_u = wbar).
///  * PEFT optimistic cost table:
///      OCT(t,p) = max over edges (t,j) of
///                 min over q of (OCT(j,q) + w(j,q) + [q != p] * cbar(t,j))
///    (exit tasks: all-zero row); rank_oct(t) = mean of OCT(t, ·).
///
/// Task selection is ready-list driven (highest rank among ready tasks,
/// ties to the smaller task id), which keeps precedence feasibility
/// even for degenerate rank ties. Placement minimises EFT (HEFT) or
/// EFT + OCT(t,p) (PEFT), ties to the smaller processor id. Everything
/// is deterministic; there is no seed.

namespace bsa::sched {

/// HEFT upward ranks, indexed by TaskId.
[[nodiscard]] std::vector<Cost> heft_upward_ranks(
    const graph::TaskGraph& g, const net::HeterogeneousCostModel& costs);

/// PEFT optimistic cost table and its row-average rank.
struct OctTable {
  /// OCT values, row-major `oct[t * m + p]`.
  std::vector<Cost> oct;
  /// rank_oct, indexed by TaskId.
  std::vector<Cost> rank;
};
[[nodiscard]] OctTable peft_optimistic_costs(
    const graph::TaskGraph& g, const net::HeterogeneousCostModel& costs);

struct RankScheduleResult {
  Schedule schedule;
  /// The priority rank actually used (rank_u / rank_oct), by TaskId.
  std::vector<Cost> ranks;
  /// Tasks in the order they were placed.
  std::vector<TaskId> order;
};

[[nodiscard]] RankScheduleResult schedule_heft(
    const graph::TaskGraph& g, const net::Topology& topo,
    const net::HeterogeneousCostModel& costs);

[[nodiscard]] RankScheduleResult schedule_peft(
    const graph::TaskGraph& g, const net::Topology& topo,
    const net::HeterogeneousCostModel& costs);

}  // namespace bsa::sched
