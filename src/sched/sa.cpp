#include "sched/sa.hpp"

#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/move_engine.hpp"

namespace bsa::sched {

SaResult anneal_schedule(const Schedule& init,
                         const net::HeterogeneousCostModel& costs,
                         const SaOptions& options) {
  BSA_REQUIRE(init.all_placed(), "anneal requires a complete schedule");
  BSA_REQUIRE(options.iters >= 0, "iters must be >= 0");
  BSA_REQUIRE(options.temp0 > 0, "temp0 must be > 0");

  SaResult result{init, init.makespan(), init.makespan(), 0, 0, 0, 0, 0};
  const auto& g = init.task_graph();
  const int m = init.topology().num_processors();
  if (options.iters == 0 || m < 2) return result;  // input, bit-identical

  // Working copy: pulled to its earliest-time fixpoint by the engine
  // (never lengthens the schedule); `result.schedule` stays the pristine
  // input so "best seen" starts at the input itself.
  Schedule cur = init;
  core::MoveEngine engine(cur, costs);
  Time cur_len = cur.makespan();
  Time best_len = result.final_length;
  if (time_lt(cur_len, best_len)) {
    result.schedule = cur;
    best_len = cur_len;
    ++result.best_updates;
  }

  const double t0 = options.temp0 * static_cast<double>(cur_len);
  const double steps = std::max(options.iters - 1, 1);
  Rng rng(derive_seed(options.seed, 0x5AA17EA1ULL));

  for (int k = 0; k < options.iters; ++k) {
    const auto t = static_cast<TaskId>(rng.index(
        static_cast<std::size_t>(g.num_tasks())));
    // Uniform over the other m-1 processors.
    auto p = static_cast<ProcId>(rng.index(static_cast<std::size_t>(m - 1)));
    if (p >= cur.proc_of(t)) ++p;
    ++result.proposed;

    const Time len = engine.evaluate(t, p);
    const double delta = static_cast<double>(len - cur_len);
    bool accept = time_le(len, cur_len);
    bool worse = false;
    if (!accept) {
      const double temp = t0 * std::pow(1e-3, static_cast<double>(k) / steps);
      accept = rng.uniform_real(0.0, 1.0) < std::exp(-delta / temp);
      worse = accept;
    }
    if (!accept) continue;

    engine.apply(t, p);
    cur_len = cur.makespan();
    ++result.accepted;
    result.accepted_worse += worse;
    if (time_lt(cur_len, best_len)) {
      result.schedule = cur;
      best_len = cur_len;
      ++result.best_updates;
    }
  }

  result.final_length = best_len;
  result.replay_fallbacks = engine.stats().replay_fallbacks;
  return result;
}

}  // namespace bsa::sched
