#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "network/cost_model.hpp"
#include "sched/schedule.hpp"

/// \file sa.hpp
/// Simulated-annealing refinement over an existing schedule.
///
/// Moves are single-task migrations (uniform random task, uniform random
/// other processor) evaluated through core::MoveEngine: each candidate is
/// journaled into a Schedule::Transaction, incrementally re-timed by a
/// RetimeContext and rolled back bit-exactly, so a rejected move costs
/// O(touched) instead of a schedule rebuild (docs/DESIGN_PORTFOLIO.md).
/// Acceptance is Metropolis on the makespan delta with geometric cooling:
///
///   T_k = temp0 * SL_init * 0.001^(k / max(iters - 1, 1))
///
/// Never-worse guarantee: the best schedule seen — starting with the
/// input itself — is tracked as a snapshot and returned, so the result
/// makespan is <= the input makespan for any iteration count. The whole
/// run is a pure function of (input schedule, costs, options): same seed
/// replays the identical move sequence bit-for-bit.

namespace bsa::sched {

struct SaOptions {
  /// Number of proposed moves; 0 returns the input untouched.
  int iters = 100;
  /// Seed of the move/acceptance stream.
  std::uint64_t seed = 0;
  /// Initial temperature as a fraction of the input makespan (> 0).
  double temp0 = 0.05;
};

struct SaResult {
  Schedule schedule;
  Time initial_length = 0;
  Time final_length = 0;
  std::int64_t proposed = 0;        ///< iterations with a usable move
  std::int64_t accepted = 0;        ///< moves applied to the working copy
  std::int64_t accepted_worse = 0;  ///< accepted despite a positive delta
  std::int64_t best_updates = 0;    ///< times the best snapshot improved
  std::int64_t replay_fallbacks = 0;  ///< MoveEngine re-timing-cycle replays
};

/// Anneal `init` (complete schedule) under `options`. Deterministic in
/// its arguments; the returned schedule never has a worse makespan than
/// `init`. With iters == 0 (or a single-processor topology, where no
/// migration exists) the input is returned bit-identically.
[[nodiscard]] SaResult anneal_schedule(const Schedule& init,
                                       const net::HeterogeneousCostModel& costs,
                                       const SaOptions& options);

}  // namespace bsa::sched
