#include "sched/rank_schedulers.hpp"

#include <algorithm>
#include <utility>

#include "baselines/list_common.hpp"
#include "common/check.hpp"
#include "network/routing.hpp"

namespace bsa::sched {
namespace {

/// Mean execution cost of `t` over all processors.
Cost mean_exec(const net::HeterogeneousCostModel& costs, TaskId t) {
  Cost sum = 0;
  for (ProcId p = 0; p < costs.num_processors(); ++p) {
    sum += costs.exec_cost(t, p);
  }
  return sum / static_cast<Cost>(costs.num_processors());
}

/// Mean communication cost of `e` over all links (0 for linkless
/// single-processor topologies).
Cost mean_comm(const net::HeterogeneousCostModel& costs, EdgeId e) {
  if (costs.num_links() == 0) return 0;
  Cost sum = 0;
  for (LinkId l = 0; l < costs.num_links(); ++l) {
    sum += costs.comm_cost(e, l);
  }
  return sum / static_cast<Cost>(costs.num_links());
}

/// Shared placement loop: ready-list selection by descending `ranks`
/// (ties to the smaller task id), earliest insertion-based slot via the
/// contended link-booking path, processor choice minimising
/// EFT + extra(t, p) where `extra` is 0 for HEFT and OCT(t, p) for PEFT.
template <typename ExtraFn>
RankScheduleResult place_by_rank(const graph::TaskGraph& g,
                                 const net::Topology& topo,
                                 const net::HeterogeneousCostModel& costs,
                                 std::vector<Cost> ranks, ExtraFn extra) {
  BSA_REQUIRE(g.num_tasks() >= 1, "empty task graph");
  const net::RoutingTable table(topo);
  RankScheduleResult result{Schedule(g, topo), std::move(ranks), {}};
  Schedule& s = result.schedule;
  result.order.reserve(static_cast<std::size_t>(g.num_tasks()));

  std::vector<int> missing_preds(static_cast<std::size_t>(g.num_tasks()));
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    missing_preds[static_cast<std::size_t>(t)] = g.in_degree(t);
    if (g.in_degree(t) == 0) ready.push_back(t);
  }

  while (!ready.empty()) {
    // Highest rank among ready tasks; ties to the smaller task id
    // (ready is maintained in ascending-id insertion order per wave, so
    // a strict > keeps the first of equals).
    std::size_t pick = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      const Cost ri = result.ranks[static_cast<std::size_t>(ready[i])];
      const Cost rp = result.ranks[static_cast<std::size_t>(ready[pick])];
      if (time_lt(rp, ri) || (time_eq(rp, ri) && ready[i] < ready[pick])) {
        pick = i;
      }
    }
    const TaskId t = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));

    ProcId best_proc = kInvalidProc;
    Time best_eft = kInfiniteTime;
    Time best_score = kInfiniteTime;
    for (ProcId p = 0; p < topo.num_processors(); ++p) {
      const Time da =
          baselines::incoming_data_ready(s, table, costs, t, p, false);
      const Time dur = costs.exec_cost(t, p);
      const Time eft = s.earliest_task_slot(p, da, dur) + dur;
      const Time score = eft + extra(t, p);
      if (time_lt(score, best_score)) {
        best_score = score;
        best_eft = eft;
        best_proc = p;
      }
    }
    BSA_ASSERT(best_proc != kInvalidProc, "no processor chosen");

    // Commit: identical booking order, so da and the slot reproduce the
    // tentative values exactly (see list_common.hpp).
    const Time da =
        baselines::incoming_data_ready(s, table, costs, t, best_proc, true);
    const Time dur = costs.exec_cost(t, best_proc);
    const Time start = s.earliest_task_slot(best_proc, da, dur);
    BSA_ASSERT(time_eq(start + dur, best_eft), "tentative EFT drifted");
    s.place_task(t, best_proc, start, start + dur);
    result.order.push_back(t);

    for (const EdgeId e : g.out_edges(t)) {
      const TaskId d = g.edge_dst(e);
      if (--missing_preds[static_cast<std::size_t>(d)] == 0) {
        ready.push_back(d);
      }
    }
  }
  BSA_ASSERT(s.all_placed(), "rank scheduler left tasks unscheduled");
  return result;
}

}  // namespace

std::vector<Cost> heft_upward_ranks(const graph::TaskGraph& g,
                                    const net::HeterogeneousCostModel& costs) {
  std::vector<Cost> rank(static_cast<std::size_t>(g.num_tasks()), 0);
  const std::vector<TaskId>& topo_order = g.topological_order();
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    const TaskId t = *it;
    Cost tail = 0;
    for (const EdgeId e : g.out_edges(t)) {
      const Cost via = mean_comm(costs, e) +
                       rank[static_cast<std::size_t>(g.edge_dst(e))];
      tail = std::max(tail, via);
    }
    rank[static_cast<std::size_t>(t)] = mean_exec(costs, t) + tail;
  }
  return rank;
}

OctTable peft_optimistic_costs(const graph::TaskGraph& g,
                               const net::HeterogeneousCostModel& costs) {
  const auto n = static_cast<std::size_t>(g.num_tasks());
  const int m = costs.num_processors();
  OctTable table;
  table.oct.assign(n * static_cast<std::size_t>(m), 0);
  table.rank.assign(n, 0);
  const std::vector<TaskId>& topo_order = g.topological_order();
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    const TaskId t = *it;
    const std::size_t row = static_cast<std::size_t>(t) *
                            static_cast<std::size_t>(m);
    Cost row_sum = 0;
    for (ProcId p = 0; p < m; ++p) {
      Cost worst = 0;
      for (const EdgeId e : g.out_edges(t)) {
        const TaskId j = g.edge_dst(e);
        const Cost cbar = mean_comm(costs, e);
        const std::size_t jrow = static_cast<std::size_t>(j) *
                                 static_cast<std::size_t>(m);
        Cost best = kInfiniteTime;
        for (ProcId q = 0; q < m; ++q) {
          const Cost via = table.oct[jrow + static_cast<std::size_t>(q)] +
                           costs.exec_cost(j, q) + (q == p ? 0 : cbar);
          best = std::min(best, via);
        }
        worst = std::max(worst, best);
      }
      table.oct[row + static_cast<std::size_t>(p)] = worst;
      row_sum += worst;
    }
    table.rank[static_cast<std::size_t>(t)] = row_sum / static_cast<Cost>(m);
  }
  return table;
}

RankScheduleResult schedule_heft(const graph::TaskGraph& g,
                                 const net::Topology& topo,
                                 const net::HeterogeneousCostModel& costs) {
  return place_by_rank(g, topo, costs, heft_upward_ranks(g, costs),
                       [](TaskId, ProcId) -> Cost { return 0; });
}

RankScheduleResult schedule_peft(const graph::TaskGraph& g,
                                 const net::Topology& topo,
                                 const net::HeterogeneousCostModel& costs) {
  OctTable table = peft_optimistic_costs(g, costs);
  const int m = topo.num_processors();
  return place_by_rank(
      g, topo, costs, std::move(table.rank),
      [oct = std::move(table.oct), m](TaskId t, ProcId p) -> Cost {
        return oct[static_cast<std::size_t>(t) * static_cast<std::size_t>(m) +
                   static_cast<std::size_t>(p)];
      });
}

}  // namespace bsa::sched
