#include "runtime/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace bsa::runtime {

namespace {

/// Trace track of the calling thread: 0 for the main thread, w+1 for
/// pool worker w — stable across chunks, so every worker gets one named
/// row in the trace viewer.
std::uint32_t worker_track() {
  return static_cast<std::uint32_t>(current_worker_id() + 1);
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : threads_(options.threads <= 0 ? default_thread_count()
                                    : options.threads),
      chunk_size_(options.chunk_size),
      tracer_(options.tracer),
      progress_(std::move(options.progress)) {}

std::vector<ScenarioResult> SweepRunner::run(const ScenarioSet& set,
                                             ResultSink* sink) const {
  std::vector<ScenarioResult> results(set.size());
  if (!set.empty()) {
    const std::size_t total = set.size();
    std::atomic<std::size_t> done{0};
    const auto evaluate = [this, &set, &results, &done, total](std::size_t i) {
      obs::Hooks hooks;
      hooks.tracer = tracer_;
      hooks.trace_tid = worker_track();
      obs::Span span(tracer_, "scenario", "sweep", hooks.trace_tid);
      span.arg("index", static_cast<double>(i));
      results[i] = evaluate_scenario(set[i], hooks);
      span.close();
      if (progress_) progress_(done.fetch_add(1) + 1, total);
    };
    if (threads_ == 1) {
      // Inline fast path: no pool startup for serial runs.
      if (tracer_ != nullptr) tracer_->set_thread_name(0, "main");
      for (std::size_t i = 0; i < set.size(); ++i) evaluate(i);
    } else {
      // Several chunks per thread so long scenarios (500-task graphs)
      // don't leave workers idle behind a static partition.
      const std::size_t chunk =
          chunk_size_ > 0
              ? chunk_size_
              : std::max<std::size_t>(
                    1, set.size() / (static_cast<std::size_t>(threads_) * 8));
      if (tracer_ != nullptr) {
        tracer_->set_thread_name(0, "main");
        for (int w = 0; w < threads_; ++w) {
          tracer_->set_thread_name(static_cast<std::uint32_t>(w + 1),
                                   "worker " + std::to_string(w));
        }
      }
      ThreadPool pool(threads_);
      if (tracer_ != nullptr) {
        // Chunk-granular path so each dynamically-claimed chunk shows up
        // as one span on its worker's track.
        pool.parallel_for_chunked(
            set.size(), chunk,
            [&evaluate, this](std::size_t begin, std::size_t end) {
              obs::Span span(tracer_, "chunk", "sweep", worker_track());
              span.arg("begin", static_cast<double>(begin));
              span.arg("end", static_cast<double>(end));
              for (std::size_t i = begin; i < end; ++i) evaluate(i);
            });
      } else {
        pool.parallel_for(set.size(), chunk, evaluate);
      }
    }
  }
  if (sink != nullptr) {
    obs::Span span(tracer_, "sink_flush", "sweep", 0);
    for (const ScenarioResult& r : results) sink->consume(r);
    sink->flush();
  }
  return results;
}

}  // namespace bsa::runtime
