#include "runtime/sweep_runner.hpp"

#include <algorithm>

#include "runtime/thread_pool.hpp"

namespace bsa::runtime {

SweepRunner::SweepRunner(SweepOptions options)
    : threads_(options.threads <= 0 ? default_thread_count()
                                    : options.threads),
      chunk_size_(options.chunk_size) {}

std::vector<ScenarioResult> SweepRunner::run(const ScenarioSet& set,
                                             ResultSink* sink) const {
  std::vector<ScenarioResult> results(set.size());
  if (!set.empty()) {
    const auto evaluate = [&set, &results](std::size_t i) {
      results[i] = evaluate_scenario(set[i]);
    };
    if (threads_ == 1) {
      // Inline fast path: no pool startup for serial runs.
      for (std::size_t i = 0; i < set.size(); ++i) evaluate(i);
    } else {
      // Several chunks per thread so long scenarios (500-task graphs)
      // don't leave workers idle behind a static partition.
      const std::size_t chunk =
          chunk_size_ > 0
              ? chunk_size_
              : std::max<std::size_t>(
                    1, set.size() / (static_cast<std::size_t>(threads_) * 8));
      ThreadPool pool(threads_);
      pool.parallel_for(set.size(), chunk, evaluate);
    }
  }
  if (sink != nullptr) {
    for (const ScenarioResult& r : results) sink->consume(r);
    sink->flush();
  }
  return results;
}

}  // namespace bsa::runtime
