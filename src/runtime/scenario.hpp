#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/counters.hpp"
#include "obs/hooks.hpp"

/// \file scenario.hpp
/// Scenario enumeration for experiment sweeps.
///
/// A *scenario* is one (workload instance × system × algorithm) evaluation
/// — the unit of work the parallel runtime shards across threads. A
/// ScenarioSet enumerates the full cross product of a ScenarioGrid in a
/// canonical order, pre-deriving every random seed from the grid
/// coordinates, so evaluating the set is embarrassingly parallel and
/// bit-identical at any thread count.
///
/// Workloads and algorithms are both registry spec strings
/// (workloads::WorkloadRegistry / sched::SchedulerRegistry — see
/// docs/SPECS.md), so one grid enumerates algorithm × workload ×
/// topology cross products.

namespace bsa::runtime {

/// Sentinel workload spec for caller-supplied graphs (e.g. bsa_tool file
/// input): such rows are loggable but not reconstructible, so
/// evaluate_scenario rejects them and a ScenarioGrid cannot enumerate
/// them.
inline constexpr const char* kExternalWorkload = "external";

/// The registry family name of a workload spec (the part before ':'),
/// e.g. "fft" for "fft:points=64" — the JSONL "app" column.
[[nodiscard]] std::string workload_family(const std::string& workload_spec);

/// One fully-specified evaluation. Everything random about the scenario
/// is fixed by the embedded seeds; evaluate_scenario is a pure function
/// of this struct.
struct ScenarioSpec {
  std::size_t index = 0;  ///< position in the ScenarioSet enumeration
  /// Workload registry spec (canonical form when enumerated by
  /// from_grid), e.g. "random" or "fft:points=64" — or
  /// kExternalWorkload for caller-supplied graphs.
  std::string workload = "random";
  int size = 100;     ///< target task count
  double granularity = 1.0;
  std::string topology = "ring";  ///< kind for exp::make_topology
  int procs = 16;
  int het_lo = 1;
  int het_hi = 50;
  /// Link-factor range; grids use the execution range for links too, but
  /// external runs (bsa_tool --link-het) may differ.
  int link_het_lo = 1;
  int link_het_hi = 50;
  bool per_pair = false;  ///< per-(task,processor) factors vs per-processor
  /// Scheduler registry spec (canonical form when enumerated by
  /// from_grid), e.g. "bsa" or "bsa:gate=always,route=static".
  std::string algo = "bsa";
  int rep = 0;  ///< replicate number within the cell
  /// Seeds the graph instance; shared by every algorithm/topology/range
  /// evaluating the same cell so ratio columns compare like with like.
  std::uint64_t instance_seed = 0;
  /// Seeds the topology factory (relevant for the "random" topology).
  std::uint64_t topology_seed = 0;
  /// Tie-breaking seed handed to the scheduling algorithm.
  std::uint64_t algo_seed = 0;

  /// The x value a figure sweep aggregates this scenario under.
  [[nodiscard]] double x_value(bool x_axis_granularity) const {
    return x_axis_granularity ? granularity : static_cast<double>(size);
  }
};

/// Outcome of one scenario evaluation.
struct ScenarioResult {
  ScenarioSpec spec;
  Time schedule_length = 0;
  double wall_ms = 0;  ///< algorithm wall-clock time (non-deterministic)
  bool valid = false;  ///< full invariant validation result
  /// Deterministic algorithm counters (SchedulerResult::counters passed
  /// through) — like schedule_length, a pure function of the spec.
  obs::CounterSnapshot counters;
};

/// How per-scenario instance seeds are derived from the grid.
enum class SeedMode : unsigned char {
  /// Seeds derive from the full cell coordinates
  /// (base_seed, size, granularity, workload, rep) — independent of the
  /// enumeration position, so grids that sweep sizes/granularities hand
  /// identical graphs to every algorithm, topology and range of a cell.
  kGridCoordinates,
  /// Seeds derive from the replicate index alone:
  /// derive_seed(base_seed, rep) — the formula of the pre-runtime serial
  /// drivers. Figure 7 uses this so its numbers match the seed repo's
  /// serial driver for the same --seed (the parallel-runtime port had
  /// silently switched fig7 to coordinate seeds, shifting its table).
  /// Restricted to single-size, single-granularity, single-workload grids
  /// (enforced by from_grid): any other cells would silently share
  /// instance seeds.
  kLegacySequential,
};
[[nodiscard]] const char* seed_mode_name(SeedMode m);

/// Axes of a sweep; the cross product is enumerated topology-outermost:
///   topology × het_hi × size × granularity × workload × rep × algo.
struct ScenarioGrid {
  /// Workload registry specs, e.g. {"random"} (Figures 4/6/7),
  /// {"gauss", "lu", "laplace"} (the Figures 3/5 regular suite) or any
  /// mix such as {"fft:points=64", "sp:depth=6"}. Canonicalised (and
  /// validated, with errors listing the registered names) by from_grid.
  std::vector<std::string> workloads = {"random"};
  std::vector<int> sizes;
  std::vector<double> granularities = {1.0};
  std::vector<std::string> topologies;
  /// Scheduler registry specs — any mix of algorithms and variants, e.g.
  /// {"dls", "bsa", "bsa:gate=always"}. Canonicalised (and validated,
  /// with errors listing the registered names) by from_grid.
  std::vector<std::string> algos;
  int procs = 16;
  int het_lo = 1;
  /// Upper heterogeneity bounds; more than one realises the Figure 7
  /// range sweep.
  std::vector<int> het_highs = {50};
  bool per_pair = false;
  int seeds_per_cell = 1;
  std::uint64_t base_seed = 2026;
  SeedMode seed_mode = SeedMode::kGridCoordinates;
};

/// The enumerated, seeded cross product of a ScenarioGrid.
class ScenarioSet {
 public:
  /// Enumerate the grid. Instance seeds are derived from
  /// (base_seed, size, granularity, workload index, rep) only — identical
  /// graphs are handed to every algorithm, topology and heterogeneity
  /// range of a cell, and the derivation is independent of enumeration
  /// position.
  [[nodiscard]] static ScenarioSet from_grid(const ScenarioGrid& grid);

  [[nodiscard]] std::size_t size() const noexcept { return scenarios_.size(); }
  [[nodiscard]] bool empty() const noexcept { return scenarios_.empty(); }
  [[nodiscard]] const ScenarioSpec& operator[](std::size_t i) const {
    return scenarios_[i];
  }
  [[nodiscard]] const std::vector<ScenarioSpec>& scenarios() const noexcept {
    return scenarios_;
  }
  [[nodiscard]] auto begin() const noexcept { return scenarios_.begin(); }
  [[nodiscard]] auto end() const noexcept { return scenarios_.end(); }

 private:
  std::vector<ScenarioSpec> scenarios_;
};

/// Evaluate one scenario: resolve the workload spec against the global
/// WorkloadRegistry, build the graph, topology and cost model from the
/// spec's seeds, run the algorithm and validate the schedule.
/// Deterministic in the spec (except the wall_ms timing field). The
/// hooks overload threads tracer/decision-log hooks into the scheduler;
/// hooks only observe, so the result is the same for any hooks.
[[nodiscard]] ScenarioResult evaluate_scenario(const ScenarioSpec& spec);
[[nodiscard]] ScenarioResult evaluate_scenario(const ScenarioSpec& spec,
                                               const obs::Hooks& hooks);

}  // namespace bsa::runtime
