#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/result_sink.hpp"
#include "runtime/scenario.hpp"

namespace bsa::obs {
class Tracer;
}  // namespace bsa::obs

/// \file sweep_runner.hpp
/// Parallel scenario-sweep executor.
///
/// The runner shards a ScenarioSet across a thread pool. Every scenario
/// carries its own pre-derived seeds (see ScenarioSet::from_grid), each
/// worker writes only its scenario's slot of a pre-sized results vector,
/// and sinks are fed in enumeration order after the sweep — so the
/// returned results and every emitted artefact are bit-identical whether
/// the sweep ran on 1 thread or 64.

namespace bsa::runtime {

struct SweepOptions {
  /// Worker count; <= 0 selects default_thread_count().
  int threads = 1;
  /// Scenarios per dynamically-claimed chunk; 0 picks a size that gives
  /// each thread several chunks to balance uneven scenario costs.
  std::size_t chunk_size = 0;
  /// Optional trace collector (not owned; must outlive run()). When set,
  /// the runner emits chunk-claim and per-scenario spans on per-worker
  /// tracks (tid 0 = main thread, tid w+1 = pool worker w) and threads
  /// the tracer into each scheduler run. Null costs nothing.
  obs::Tracer* tracer = nullptr;
  /// Optional progress callback, invoked as (done, total) after every
  /// scenario completes — from worker threads, so it must be
  /// thread-safe (obs::ProgressMeter::callback() qualifies). Purely
  /// observational: results and sink output are unaffected.
  std::function<void(std::size_t, std::size_t)> progress = nullptr;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Evaluate every scenario in the set. Results are returned — and
  /// streamed to `sink`, when given — in enumeration order regardless of
  /// thread count. An empty set returns an empty vector without spinning
  /// up any threads. Exceptions from scenario evaluation propagate after
  /// in-flight scenarios drain.
  std::vector<ScenarioResult> run(const ScenarioSet& set,
                                  ResultSink* sink = nullptr) const;

  [[nodiscard]] int threads() const noexcept { return threads_; }

 private:
  int threads_;
  std::size_t chunk_size_;
  obs::Tracer* tracer_;
  std::function<void(std::size_t, std::size_t)> progress_;
};

}  // namespace bsa::runtime
