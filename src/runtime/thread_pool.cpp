#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/check.hpp"
#include "fault/failpoint.hpp"

namespace bsa::runtime {

int default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {
/// Worker index within the owning pool; -1 on threads not started by a
/// ThreadPool (set once at worker startup, before any task runs).
thread_local int t_worker_id = -1;
}  // namespace

int current_worker_id() noexcept { return t_worker_id; }

ThreadPool::ThreadPool(int threads) {
  const int n = threads <= 0 ? default_thread_count() : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  BSA_REQUIRE(task != nullptr, "ThreadPool::submit: null task");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    BSA_REQUIRE(!shutting_down_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    const std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(n, chunk, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

void ThreadPool::parallel_for_chunked(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& chunk_body) {
  if (n == 0) return;
  BSA_REQUIRE(chunk > 0, "ThreadPool::parallel_for: chunk must be positive");
  // One claim ticket per chunk; workers grab the next unclaimed chunk.
  // The chunk an index lands in is a pure function of (n, chunk), so the
  // sharding itself is deterministic at any worker count.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  const std::size_t num_tasks =
      std::min<std::size_t>(num_chunks, static_cast<std::size_t>(size()));
  for (std::size_t t = 0; t < num_tasks; ++t) {
    submit([next, n, chunk, &chunk_body] {
      for (;;) {
        const std::size_t c = next->fetch_add(1);
        const std::size_t begin = c * chunk;
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk);
        chunk_body(begin, end);
      }
    });
  }
  wait();
}

void ThreadPool::worker_loop(int worker_id) {
  t_worker_id = worker_id;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      // Scheduling-jitter failpoint: a configured delay perturbs task
      // interleavings (TSan food); other action kinds are no-ops here.
      fault::maybe_delay(fault::check(fault::SiteId::kPool));
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_.notify_all();
  }
}

}  // namespace bsa::runtime
