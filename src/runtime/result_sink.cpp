#include "runtime/result_sink.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace bsa::runtime {

std::string to_jsonl(const ScenarioResult& row) {
  return to_jsonl(row, /*with_counters=*/false);
}

std::string to_jsonl(const ScenarioResult& row, bool with_counters) {
  const ScenarioSpec& s = row.spec;
  std::ostringstream os;
  os << "{\"index\":" << s.index                                        //
     << ",\"workload\":\"" << json_escape(s.workload) << '"'            //
     << ",\"app\":\"" << json_escape(workload_family(s.workload)) << '"'  //
     << ",\"size\":" << s.size                                          //
     << ",\"granularity\":" << json_number(s.granularity)               //
     << ",\"topology\":\"" << json_escape(s.topology) << '"'            //
     << ",\"procs\":" << s.procs                                        //
     << ",\"het_lo\":" << s.het_lo << ",\"het_hi\":" << s.het_hi        //
     << ",\"link_het_lo\":" << s.link_het_lo                            //
     << ",\"link_het_hi\":" << s.link_het_hi                            //
     << ",\"per_pair\":" << (s.per_pair ? "true" : "false")             //
     << ",\"algo\":\"" << json_escape(s.algo) << '"'                    //
     << ",\"rep\":" << s.rep                                            //
     << ",\"seed\":" << s.instance_seed                                 //
     << ",\"schedule_length\":" << json_number(row.schedule_length)     //
     << ",\"wall_ms\":" << json_number(row.wall_ms)                     //
     << ",\"valid\":" << (row.valid ? "true" : "false");
  if (with_counters) {
    for (const auto& [name, value] : row.counters) {
      os << ",\"ctr:" << json_escape(name) << "\":" << value;
    }
  }
  os << '}';
  return os.str();
}

namespace {

/// Cursor over a JSON line with the handful of scalar productions the
/// sink emits.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  std::map<std::string, JsonScalar> parse_object() {
    std::map<std::string, JsonScalar> out;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        out[std::move(key)] = parse_scalar();
        skip_ws();
        const char c = next();
        if (c == '}') break;
        BSA_REQUIRE(c == ',', "jsonl: expected ',' or '}' at offset "
                                  << pos_ - 1 << " in: " << text_);
      }
    }
    skip_ws();
    BSA_REQUIRE(pos_ == text_.size(),
                "jsonl: trailing characters after object: " << text_);
    return out;
  }

 private:
  [[nodiscard]] char peek() const {
    BSA_REQUIRE(pos_ < text_.size(), "jsonl: unexpected end of line");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    BSA_REQUIRE(next() == c,
                "jsonl: expected '" << c << "' at offset " << pos_ - 1
                                    << " in: " << text_);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      c = next();
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          BSA_REQUIRE(pos_ + 4 <= text_.size(), "jsonl: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            BSA_REQUIRE(std::isxdigit(static_cast<unsigned char>(h)),
                        "jsonl: bad hex digit '" << h << "' in \\u escape");
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0'
                                : std::tolower(static_cast<unsigned char>(h)) -
                                      'a' + 10);
          }
          pos_ += 4;
          BSA_REQUIRE(code < 0x80,
                      "jsonl: non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          BSA_REQUIRE(false, "jsonl: bad escape '\\" << c << "'");
      }
    }
  }

  JsonScalar parse_scalar() {
    const char c = peek();
    if (c == '"') return parse_string();
    if (literal("true")) return true;
    if (literal("false")) return false;
    if (literal("null")) return nullptr;
    // Number.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    BSA_REQUIRE(pos_ > start, "jsonl: expected a value at offset "
                                  << start << " in: " << text_);
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    BSA_REQUIRE(end != nullptr && *end == '\0',
                "jsonl: malformed number '" << tok << "'");
    return v;
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::map<std::string, JsonScalar> parse_jsonl_row(const std::string& line) {
  return MiniJsonParser(line).parse_object();
}

JsonlSink::JsonlSink(std::ostream& os, bool emit_counters)
    : os_(&os), emit_counters_(emit_counters) {}

JsonlSink::JsonlSink(const std::string& path, bool append, bool emit_counters)
    : owned_(std::make_unique<std::ofstream>(
          path, append ? std::ios::app : std::ios::trunc)),
      os_(owned_.get()),
      emit_counters_(emit_counters) {
  BSA_REQUIRE(owned_->good(), "JsonlSink: cannot open '" << path << "'");
}

void JsonlSink::consume(const ScenarioResult& row) {
  const std::string line = to_jsonl(row, emit_counters_);
  const std::lock_guard<std::mutex> lock(mu_);
  *os_ << line << '\n';
  ++rows_;
}

void JsonlSink::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  os_->flush();
}

std::size_t JsonlSink::rows_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

void CollectingSink::consume(const ScenarioResult& row) {
  const std::lock_guard<std::mutex> lock(mu_);
  rows_.push_back(row);
}

TeeSink::TeeSink(std::vector<ResultSink*> sinks) : sinks_(std::move(sinks)) {
  for (ResultSink* s : sinks_) BSA_REQUIRE(s != nullptr, "TeeSink: null sink");
}

void TeeSink::consume(const ScenarioResult& row) {
  for (ResultSink* s : sinks_) s->consume(row);
}

void TeeSink::flush() {
  for (ResultSink* s : sinks_) s->flush();
}

void write_bench_json(std::ostream& os, const std::string& bench_name,
                      int threads, const std::vector<BenchEntry>& entries) {
  os << "{\"bench\":\"" << json_escape(bench_name) << "\",\"threads\":"
     << threads << ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    os << (i ? "," : "") << "{\"label\":\"" << json_escape(e.label)
       << "\",\"runs\":" << e.runs
       << ",\"mean_wall_ms\":" << json_number(e.mean_wall_ms)
       << ",\"p50_wall_ms\":" << json_number(e.p50_wall_ms)
       << ",\"p99_wall_ms\":" << json_number(e.p99_wall_ms)
       << ",\"mean_schedule_length\":" << json_number(e.mean_schedule_length);
    if (!e.counters.empty()) {
      os << ",\"counters\":{";
      for (std::size_t c = 0; c < e.counters.size(); ++c) {
        os << (c ? "," : "") << '"' << json_escape(e.counters[c].first)
           << "\":" << e.counters[c].second;
      }
      os << '}';
    }
    os << '}';
  }
  os << "]}\n";
}

}  // namespace bsa::runtime
