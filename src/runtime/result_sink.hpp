#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "runtime/scenario.hpp"

/// \file result_sink.hpp
/// Result sinks for the experiment runtime.
///
/// A ResultSink receives one ScenarioResult per evaluated scenario.
/// Sinks are thread-safe (consume may be called from any thread), but the
/// SweepRunner feeds them in enumeration order after the sweep so that
/// emitted files are byte-identical at any thread count.

namespace bsa::runtime {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// Record one result. Implementations must be safe to call concurrently.
  virtual void consume(const ScenarioResult& row) = 0;
  /// Flush buffered output (no-op by default).
  virtual void flush() {}
};

/// Serialise one result as a single-line JSON object (JSON Lines row).
/// Numbers are formatted with round-trip precision so re-parsing yields
/// bit-identical values.
[[nodiscard]] std::string to_jsonl(const ScenarioResult& row);

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes added).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Format a double with round-trip (max_digits10) precision; integral
/// values print without an exponent or trailing zeros.
[[nodiscard]] std::string json_number(double v);

/// A parsed scalar from a flat JSONL row.
using JsonScalar = std::variant<std::nullptr_t, bool, double, std::string>;

/// Parse one flat JSON object line (string/number/bool/null values; no
/// nesting) into key -> scalar. Throws PreconditionError on malformed
/// input. This is intentionally minimal — just enough for round-trip
/// tests and downstream tooling; rows produced by to_jsonl always parse.
[[nodiscard]] std::map<std::string, JsonScalar> parse_jsonl_row(
    const std::string& line);

/// Streams rows to an ostream as JSON Lines.
class JsonlSink : public ResultSink {
 public:
  /// Write to a caller-owned stream (kept alive by the caller).
  explicit JsonlSink(std::ostream& os);
  /// Open `path` for writing — truncated by default, appended to with
  /// `append == true` (JSONL accretes across runs). Throws
  /// PreconditionError when the file cannot be opened.
  explicit JsonlSink(const std::string& path, bool append = false);

  void consume(const ScenarioResult& row) override;
  void flush() override;
  [[nodiscard]] std::size_t rows_written() const;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
  mutable std::mutex mu_;
  std::size_t rows_ = 0;
};

/// Collects every row in memory (in consume order).
class CollectingSink : public ResultSink {
 public:
  void consume(const ScenarioResult& row) override;
  [[nodiscard]] const std::vector<ScenarioResult>& rows() const noexcept {
    return rows_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<ScenarioResult> rows_;
};

/// Fan out every row to several sinks (none owned).
class TeeSink : public ResultSink {
 public:
  explicit TeeSink(std::vector<ResultSink*> sinks);
  void consume(const ScenarioResult& row) override;
  void flush() override;

 private:
  std::vector<ResultSink*> sinks_;
};

/// One aggregated entry of a BENCH_*.json perf report.
struct BenchEntry {
  std::string label;   ///< e.g. "BSA/ring/100"
  std::size_t runs = 0;
  double mean_wall_ms = 0;
  double mean_schedule_length = 0;
};

/// Write the repo's BENCH_*.json perf-trajectory format: a single JSON
/// object with bench metadata and one entry per aggregate cell.
void write_bench_json(std::ostream& os, const std::string& bench_name,
                      int threads, const std::vector<BenchEntry>& entries);

}  // namespace bsa::runtime
