#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "common/json.hpp"
#include "obs/counters.hpp"
#include "runtime/scenario.hpp"

/// \file result_sink.hpp
/// Result sinks for the experiment runtime.
///
/// A ResultSink receives one ScenarioResult per evaluated scenario.
/// Sinks are thread-safe (consume may be called from any thread), but the
/// SweepRunner feeds them in enumeration order after the sweep so that
/// emitted files are byte-identical at any thread count.

namespace bsa::runtime {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// Record one result. Implementations must be safe to call concurrently.
  virtual void consume(const ScenarioResult& row) = 0;
  /// Flush buffered output (no-op by default).
  virtual void flush() {}
};

/// Serialise one result as a single-line JSON object (JSON Lines row).
/// Numbers are formatted with round-trip precision so re-parsing yields
/// bit-identical values. With `with_counters`, each algorithm counter is
/// appended as a flat "ctr:<name>" key (flat so parse_jsonl_row still
/// round-trips the row); the default emission is unchanged so existing
/// JSONL consumers and byte-identity baselines are unaffected.
[[nodiscard]] std::string to_jsonl(const ScenarioResult& row);
[[nodiscard]] std::string to_jsonl(const ScenarioResult& row,
                                   bool with_counters);

/// JSON string/number formatting lives in common/json.hpp; re-exported
/// here for the existing bsa::runtime call sites.
using bsa::json_escape;
using bsa::json_number;

/// A parsed scalar from a flat JSONL row.
using JsonScalar = std::variant<std::nullptr_t, bool, double, std::string>;

/// Parse one flat JSON object line (string/number/bool/null values; no
/// nesting) into key -> scalar. Throws PreconditionError on malformed
/// input. This is intentionally minimal — just enough for round-trip
/// tests and downstream tooling; rows produced by to_jsonl always parse.
[[nodiscard]] std::map<std::string, JsonScalar> parse_jsonl_row(
    const std::string& line);

/// Streams rows to an ostream as JSON Lines.
class JsonlSink : public ResultSink {
 public:
  /// Write to a caller-owned stream (kept alive by the caller).
  /// `emit_counters` opts into the "ctr:<name>" columns (see to_jsonl).
  explicit JsonlSink(std::ostream& os, bool emit_counters = false);
  /// Open `path` for writing — truncated by default, appended to with
  /// `append == true` (JSONL accretes across runs). Throws
  /// PreconditionError when the file cannot be opened.
  explicit JsonlSink(const std::string& path, bool append = false,
                     bool emit_counters = false);

  void consume(const ScenarioResult& row) override;
  void flush() override;
  [[nodiscard]] std::size_t rows_written() const;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
  bool emit_counters_ = false;
  mutable std::mutex mu_;
  std::size_t rows_ = 0;
};

/// Collects every row in memory (in consume order).
class CollectingSink : public ResultSink {
 public:
  void consume(const ScenarioResult& row) override;
  [[nodiscard]] const std::vector<ScenarioResult>& rows() const noexcept {
    return rows_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<ScenarioResult> rows_;
};

/// Fan out every row to several sinks (none owned).
class TeeSink : public ResultSink {
 public:
  explicit TeeSink(std::vector<ResultSink*> sinks);
  void consume(const ScenarioResult& row) override;
  void flush() override;

 private:
  std::vector<ResultSink*> sinks_;
};

/// One aggregated entry of a BENCH_*.json perf report.
struct BenchEntry {
  std::string label;   ///< e.g. "BSA/ring/100"
  std::size_t runs = 0;
  double mean_wall_ms = 0;
  double mean_schedule_length = 0;
  /// Wall-time percentiles across the runs (0 when not collected; the
  /// mean fields above are kept so older BENCH_*.json consumers keep
  /// working).
  double p50_wall_ms = 0;
  double p99_wall_ms = 0;
  /// Summed deterministic algorithm counters over the runs (empty when
  /// not collected); emitted as a nested "counters" object.
  obs::CounterSnapshot counters = {};
};

/// Write the repo's BENCH_*.json perf-trajectory format: a single JSON
/// object with bench metadata and one entry per aggregate cell.
void write_bench_json(std::ostream& os, const std::string& bench_name,
                      int threads, const std::vector<BenchEntry>& entries);

}  // namespace bsa::runtime
