#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// Chunked work-queue thread pool for the experiment runtime.
///
/// The pool is deliberately simple: a fixed set of workers draining one
/// shared FIFO queue. Scenario sweeps submit *chunks* of scenario indices
/// (see parallel_for), so queue contention is amortised over many
/// scenarios and the sharding stays deterministic: which thread runs a
/// chunk never affects what the chunk computes or where it stores its
/// results.

namespace bsa::runtime {

/// Number of workers to use when the caller passes `threads <= 0`:
/// the hardware concurrency, with a floor of 1.
[[nodiscard]] int default_thread_count() noexcept;

/// Index of the calling thread within its owning ThreadPool (0-based),
/// or -1 when called off-pool (e.g. from the main thread). Used by
/// observability to assign stable per-worker trace tracks.
[[nodiscard]] int current_worker_id() noexcept;

class ThreadPool {
 public:
  /// Start `threads` workers (<= 0 selects default_thread_count()).
  explicit ThreadPool(int threads = 0);
  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueue one task. Tasks must not themselves call submit/parallel_for
  /// on the same pool (no nested parallelism).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// exception raised by any task (later ones are dropped).
  void wait();

  /// Run `body(i)` for every i in [0, n), sharding [0, n) into contiguous
  /// chunks of at most `chunk` indices that workers claim dynamically.
  /// Blocks until all iterations complete; rethrows the first exception.
  /// `n == 0` is a no-op. Iteration order within a chunk is ascending;
  /// chunk-to-thread assignment is non-deterministic, so `body` must only
  /// touch per-index state (e.g. slot i of a pre-sized results vector).
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t)>& body);

  /// Chunk-granular variant: `chunk_body(begin, end)` is invoked once per
  /// claimed chunk with its half-open index range. parallel_for is this
  /// with a per-index inner loop; callers that want per-chunk work (e.g.
  /// a trace span around each chunk) use this directly. Same sharding,
  /// blocking and exception contract as parallel_for.
  void parallel_for_chunked(
      std::size_t n, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t)>& chunk_body);

 private:
  void worker_loop(int worker_id);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;  ///< queued + currently running tasks
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

}  // namespace bsa::runtime
