#include "runtime/scenario.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exp/experiment.hpp"
#include "sched/scheduler.hpp"
#include "workloads/workload_registry.hpp"

namespace bsa::runtime {

std::string workload_family(const std::string& workload_spec) {
  return workload_spec.substr(0, workload_spec.find(':'));
}

const char* seed_mode_name(SeedMode m) {
  switch (m) {
    case SeedMode::kGridCoordinates:
      return "grid";
    case SeedMode::kLegacySequential:
      return "legacy";
  }
  return "?";
}

ScenarioSet ScenarioSet::from_grid(const ScenarioGrid& grid) {
  BSA_REQUIRE(!grid.workloads.empty(), "ScenarioGrid: no workloads");
  BSA_REQUIRE(!grid.sizes.empty(), "ScenarioGrid: no sizes");
  BSA_REQUIRE(!grid.granularities.empty(), "ScenarioGrid: no granularities");
  BSA_REQUIRE(!grid.topologies.empty(), "ScenarioGrid: no topologies");
  BSA_REQUIRE(!grid.algos.empty(), "ScenarioGrid: no algorithms");
  BSA_REQUIRE(!grid.het_highs.empty(), "ScenarioGrid: no heterogeneity range");
  BSA_REQUIRE(grid.seeds_per_cell > 0, "ScenarioGrid: seeds_per_cell < 1");

  // Legacy seeds depend on the replicate index alone: on a grid with
  // several sizes, granularities or workloads they would silently hand
  // the same instance seed to cells that are supposed to be independent.
  BSA_REQUIRE(grid.seed_mode != SeedMode::kLegacySequential ||
                  (grid.sizes.size() == 1 && grid.granularities.size() == 1 &&
                   grid.workloads.size() == 1),
              "ScenarioGrid: kLegacySequential requires a single size, "
              "granularity and workload (seeds derive from the replicate "
              "only)");

  // Canonicalise every workload and algorithm spec once up front: bad
  // specs fail here with an error listing the registered names, and
  // downstream consumers (JSONL sinks, aggregation keys) see one
  // spelling per variant.
  std::vector<std::string> workloads;
  workloads.reserve(grid.workloads.size());
  for (const std::string& spec : grid.workloads) {
    workloads.push_back(workloads::WorkloadRegistry::global().canonical(spec));
  }
  std::vector<std::string> algos;
  algos.reserve(grid.algos.size());
  for (const std::string& spec : grid.algos) {
    algos.push_back(sched::SchedulerRegistry::global().canonical(spec));
  }

  ScenarioSet set;
  set.scenarios_.reserve(grid.topologies.size() * grid.het_highs.size() *
                         grid.sizes.size() * grid.granularities.size() *
                         workloads.size() *
                         static_cast<std::size_t>(grid.seeds_per_cell) *
                         algos.size());
  for (const std::string& topo : grid.topologies) {
    for (const int het_hi : grid.het_highs) {
      for (const int size : grid.sizes) {
        for (const double gran : grid.granularities) {
          for (std::size_t w = 0; w < workloads.size(); ++w) {
            for (int rep = 0; rep < grid.seeds_per_cell; ++rep) {
              // Both formulas depend on the cell only — never on
              // topology, range, algorithm or thread count — so every
              // algorithm of a cell schedules the same graph at any
              // --threads. kLegacySequential reproduces the pre-runtime
              // serial drivers (fig7); kGridCoordinates additionally
              // decorrelates cells across sizes/granularities/workloads.
              // The workload's position in the grid (not its spec) keys
              // the derivation — the same formula as the pre-registry
              // app_index, so fig3-6 instances are unchanged.
              const std::uint64_t instance_seed =
                  grid.seed_mode == SeedMode::kLegacySequential
                      ? derive_seed(grid.base_seed,
                                    static_cast<std::uint64_t>(rep))
                      : derive_seed(
                            grid.base_seed,
                            static_cast<std::uint64_t>(size) * 1000 +
                                static_cast<std::uint64_t>(gran * 10),
                            static_cast<std::uint64_t>(w),
                            static_cast<std::uint64_t>(rep));
              for (const std::string& algo : algos) {
                ScenarioSpec s;
                s.index = set.scenarios_.size();
                s.workload = workloads[w];
                s.size = size;
                s.granularity = gran;
                s.topology = topo;
                s.procs = grid.procs;
                s.het_lo = grid.het_lo;
                s.het_hi = het_hi;
                s.link_het_lo = grid.het_lo;
                s.link_het_hi = het_hi;
                s.per_pair = grid.per_pair;
                s.algo = algo;
                s.rep = rep;
                s.instance_seed = instance_seed;
                s.topology_seed = grid.base_seed;
                s.algo_seed = instance_seed;
                set.scenarios_.push_back(std::move(s));
              }
            }
          }
        }
      }
    }
  }
  return set;
}

ScenarioResult evaluate_scenario(const ScenarioSpec& spec) {
  return evaluate_scenario(spec, obs::Hooks{});
}

ScenarioResult evaluate_scenario(const ScenarioSpec& spec,
                                 const obs::Hooks& hooks) {
  BSA_REQUIRE(spec.workload != kExternalWorkload,
              "evaluate_scenario: external graphs are not reconstructible "
              "from a spec");
  const graph::TaskGraph g =
      workloads::WorkloadRegistry::global()
          .resolve(spec.workload)
          ->generate(spec.size, spec.granularity, spec.instance_seed);
  const net::Topology topo =
      exp::make_topology(spec.topology, spec.procs, spec.topology_seed);
  const net::HeterogeneousCostModel cm =
      exp::make_cost_model(g, topo, spec.het_lo, spec.het_hi,
                           spec.link_het_lo, spec.link_het_hi, spec.per_pair,
                           derive_seed(spec.instance_seed, 17));
  exp::RunOutcome outcome =
      exp::run_algorithm(spec.algo, g, topo, cm, spec.algo_seed, hooks);
  ScenarioResult r;
  r.spec = spec;
  r.schedule_length = outcome.schedule_length;
  r.wall_ms = outcome.wall_ms;
  r.valid = outcome.valid;
  r.counters = std::move(outcome.counters);
  return r;
}

}  // namespace bsa::runtime
