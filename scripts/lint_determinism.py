#!/usr/bin/env python3
"""Determinism linter: statically guard the bit-identical-results contract.

The repo's schedules, JSONL rows and BENCH tables are pinned bit-identical
at any thread count. That property dies silently the moment
result-producing code iterates a hash container, reads a wall clock, or
draws from a nondeterministically seeded RNG. This linter bans those
constructs in `src/` (stdlib only, no third-party deps):

  unordered-container  std::unordered_{map,set,multimap,multiset} —
                       iteration order depends on hashing/libstdc++
                       internals, not on inputs.
  wall-clock           ::now(), time(), gettimeofday(), clock() — results
                       must be a function of inputs, never of timing.
                       (Measuring *reported* wall time is fine where
                       waived: obs/ and scheduler phase timing.)
  random               std::rand/srand (hidden global state),
                       std::random_device (nondeterministic by design).
                       Seeded <random> engines are allowed.
  pointer-key          std::map/std::set keyed by a pointer type —
                       ordered, but by allocation address, which varies
                       run to run.

Waivers are explicit and must be justified:

    foo();  // lint:allow(wall-clock): progress meter, not a result path

A waiver suppresses its rule on the same line, or — when the line holds
only the comment — on the next line. Waivers with an unknown rule or an
empty reason, and waivers that suppress nothing, are themselves errors
(waiver-syntax / waiver-unused), so the waiver list cannot rot.

Some subsystems legitimately read clocks throughout one translation unit
(the scheduling service measures request latency for its response
envelope). For those, a *file-scoped* waiver at the top of the file
covers every occurrence of one rule:

    // lint:allow-file(wall-clock): request-latency envelope only

File waivers are deliberately harder to earn than line waivers: each
rule carries an explicit path allowlist (SCOPED_FILE_WAIVERS below —
currently wall-clock under src/serve/ only), and an allow-file outside
its rule's scope is a `waiver-scope` error. Unknown rules, missing
reasons and allow-files that suppress nothing are errors exactly like
line waivers.

clang-tidy suppressions are held to the same standard wherever this
linter scans (rule `nolint`): `NOLINT`/`NOLINTNEXTLINE` must name the
suppressed check and carry a reason (`// NOLINT(check): why`); blanket
`NOLINT` and block `NOLINTBEGIN/END` are banned.

Usage:
  lint_determinism.py [ROOT...]          lint roots (default: src/ next to
                                         this script's parent directory)
  --nolint-scan ROOT...                  extra roots checked only for the
                                         `nolint` rule (benches/tests may
                                         read clocks, but may not carry
                                         unexplained suppressions)
  --self-test                            run the fixture corpus in
                                         scripts/lint_fixtures/
  --inject-test FILE                     guard the guard: FILE must lint
                                         clean, and seeded violations
                                         (an unordered_map iteration and a
                                         now() call) must fail

Exit status: 0 clean / self-test passed, 1 findings, 2 usage error.
"""

import argparse
import re
import sys
import tempfile
from pathlib import Path

EXTENSIONS = {".cpp", ".hpp", ".cc", ".h"}

RULES = {
    "unordered-container": (
        re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
        "hash-container iteration order is not deterministic",
    ),
    "wall-clock": (
        re.compile(
            r"::now\s*\(|\b(?:std::)?time\s*\(|\bgettimeofday\s*\(|"
            r"\bclock\s*\(\s*\)|\blocaltime\b|\bgmtime\b"
        ),
        "wall-clock read in result-producing code",
    ),
    "random": (
        re.compile(r"\bstd::rand\b|\brand\s*\(\s*\)|\bsrand\s*\(|\brandom_device\b"),
        "nondeterministic or global-state randomness",
    ),
    "pointer-key": (
        re.compile(
            r"\bstd::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?"
            r"[A-Za-z_][\w:]*\s*\*"
        ),
        "ordered container keyed by pointer value (allocation-order dependent)",
    ),
}

# NOLINT hygiene: named check(s) + ': reason'. NOLINTBEGIN/END and blanket
# NOLINT are rejected outright.
NOLINT_TOKEN = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?")
NOLINT_OK = re.compile(r"NOLINT(?:NEXTLINE)?\([\w.\-,* ]+\)\s*:\s*\S")

WAIVER = re.compile(r"//\s*lint:allow\(([^)]*)\)\s*(?::\s*(.*))?$")
FILE_WAIVER = re.compile(r"//\s*lint:allow-file\(([^)]*)\)\s*(?::\s*(.*))?")

# Scoped file-waiver policy: which rules may be waived for a whole file,
# and under which path fragments. Everything else must use per-line
# waivers, so a blanket opt-out cannot quietly spread to result-producing
# code. src/serve/ measures request latency (a reported envelope field,
# never a schedule input), hence the wall-clock scope.
SCOPED_FILE_WAIVERS = {
    "wall-clock": ("src/serve/",),
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def split_code_comment(line, in_block):
    """Split a source line into (code, comment) honouring /* */ state.

    String literals are blanked from the code half so a banned token inside
    a message ("no time() here") cannot trigger; comment text is returned
    verbatim because waivers and NOLINTs live there.
    """
    code, comment = [], []
    i, n = 0, len(line)
    in_string = None
    while i < n:
        ch = line[i]
        if in_block:
            if line.startswith("*/", i):
                in_block = False
                i += 2
            else:
                comment.append(ch)
                i += 1
            continue
        if in_string:
            code.append(" ")
            if ch == "\\":
                i += 2
                continue
            if ch == in_string:
                in_string = None
            i += 1
            continue
        if ch in "\"'":
            in_string = ch
            code.append(" ")
            i += 1
            continue
        if line.startswith("//", i):
            comment.append(line[i:])
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        code.append(ch)
        i += 1
    return "".join(code), "".join(comment), in_block


class Waiver:
    def __init__(self, path, line, rules, reason, own_line):
        self.path = path
        self.line = line          # line the waiver comment sits on
        self.rules = rules
        self.reason = reason
        self.own_line = own_line  # comment-only line: applies to line + 1
        self.used = False

    @property
    def target_line(self):
        return self.line + 1 if self.own_line else self.line


def lint_file(path, findings, nolint_only=False):
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        findings.append(Finding(path, 0, "io", f"unreadable: {err}"))
        return

    waivers = []
    file_waivers = []
    raw = []  # (lineno, code, comment)
    in_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        code, comment, in_block = split_code_comment(line, in_block)
        raw.append((lineno, code, comment))

        fm = FILE_WAIVER.search(comment)
        if fm:
            rules = [r.strip() for r in fm.group(1).split(",") if r.strip()]
            reason = (fm.group(2) or "").strip()
            unknown = [r for r in rules if r not in RULES]
            if not rules or unknown:
                findings.append(Finding(
                    path, lineno, "waiver-syntax",
                    f"allow-file names unknown rule(s) {unknown or '(none)'}; "
                    f"known: {', '.join(sorted(RULES))}"))
            elif not reason:
                findings.append(Finding(
                    path, lineno, "waiver-syntax",
                    "allow-file without a written reason "
                    "(// lint:allow-file(rule): reason)"))
            else:
                posix = Path(path).as_posix()
                out_of_scope = [
                    r for r in rules
                    if not any(frag in posix
                               for frag in SCOPED_FILE_WAIVERS.get(r, ()))]
                if out_of_scope:
                    scopes = "; ".join(
                        f"{r}: {', '.join(SCOPED_FILE_WAIVERS[r]) or '(nowhere)'}"
                        if r in SCOPED_FILE_WAIVERS else f"{r}: (nowhere)"
                        for r in out_of_scope)
                    findings.append(Finding(
                        path, lineno, "waiver-scope",
                        f"allow-file({','.join(out_of_scope)}) is not "
                        f"honoured for this path — scoped policy allows {scopes}; "
                        "use per-line lint:allow waivers here"))
                else:
                    file_waivers.append(
                        Waiver(path, lineno, rules, reason, own_line=False))
            continue  # an allow-file line is not also a line waiver

        m = WAIVER.search(comment)
        if m:
            rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            reason = (m.group(2) or "").strip()
            unknown = [r for r in rules if r not in RULES]
            if not rules or unknown:
                findings.append(Finding(
                    path, lineno, "waiver-syntax",
                    f"waiver names unknown rule(s) {unknown or '(none)'}; "
                    f"known: {', '.join(sorted(RULES))}"))
            elif not reason:
                findings.append(Finding(
                    path, lineno, "waiver-syntax",
                    "waiver without a written reason "
                    "(// lint:allow(rule): reason)"))
            else:
                waivers.append(Waiver(path, lineno, rules, reason,
                                      own_line=code.strip() == ""))

        for tok in NOLINT_TOKEN.finditer(comment):
            if tok.group(0) in ("NOLINTBEGIN", "NOLINTEND"):
                findings.append(Finding(
                    path, lineno, "nolint",
                    f"{tok.group(0)} block suppression is banned; suppress "
                    "single lines with NOLINT(check): reason"))
            elif not NOLINT_OK.match(comment[tok.start():]):
                findings.append(Finding(
                    path, lineno, "nolint",
                    "NOLINT must name the suppressed check and carry a "
                    "reason: // NOLINT(check-name): why"))

    if nolint_only:
        return

    waived = {}  # (line, rule) -> Waiver
    for w in waivers:
        for r in w.rules:
            waived[(w.target_line, r)] = w
    file_waived = {}  # rule -> Waiver, whole file
    for w in file_waivers:
        for r in w.rules:
            file_waived[r] = w

    for lineno, code, _ in raw:
        for rule, (pattern, message) in RULES.items():
            if pattern.search(code):
                w = waived.get((lineno, rule))
                if w is None:
                    w = file_waived.get(rule)
                if w is not None:
                    w.used = True
                else:
                    findings.append(Finding(path, lineno, rule, message))

    for w in waivers + file_waivers:
        if not w.used:
            findings.append(Finding(
                w.path, w.line, "waiver-unused",
                f"waiver for {','.join(w.rules)} suppresses nothing "
                "(stale waivers are removed, not kept)"))


def iter_sources(roots):
    for root in roots:
        root = Path(root)
        if root.is_file():
            yield root
        elif root.is_dir():
            yield from sorted(p for p in root.rglob("*")
                              if p.suffix in EXTENSIONS and p.is_file())
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")


def lint_roots(roots, nolint_roots=()):
    findings = []
    for path in iter_sources(roots):
        lint_file(path, findings)
    for path in iter_sources(nolint_roots):
        lint_file(path, findings, nolint_only=True)
    return findings


# --- self-test over the fixture corpus --------------------------------------

EXPECT = re.compile(r"//\s*lint-fixture expect:\s*(.*)$")


def self_test(fixtures_dir):
    """Every fixture's first line declares its expected findings:

        // lint-fixture expect: clean
        // lint-fixture expect: wall-clock@6 random@9

    The self-test fails on any mismatch in either direction, so both the
    detectors and the waiver machinery are pinned.
    """
    # rglob: scoped allow-file fixtures live in path-shaped subdirectories
    # (e.g. lint_fixtures/src/serve/) so the policy's path matching is
    # exercised by real relative paths.
    fixtures = sorted(fixtures_dir.rglob("*.cpp"))
    if not fixtures:
        print(f"self-test: no fixtures under {fixtures_dir}", file=sys.stderr)
        return 1
    failures = 0
    for fixture in fixtures:
        first = fixture.read_text(encoding="utf-8").splitlines()[0]
        m = EXPECT.search(first)
        if not m:
            print(f"self-test: {fixture} lacks a '// lint-fixture expect:' "
                  "header", file=sys.stderr)
            failures += 1
            continue
        spec = m.group(1).strip()
        expected = set()
        if spec != "clean":
            for item in spec.split():
                rule, _, line = item.partition("@")
                expected.add((rule, int(line)))
        findings = []
        lint_file(fixture, findings)
        actual = {(f.rule, f.line) for f in findings}
        if actual != expected:
            failures += 1
            print(f"self-test FAIL: {fixture.name}", file=sys.stderr)
            for rule, line in sorted(expected - actual):
                print(f"  missing: [{rule}] at line {line}", file=sys.stderr)
            for rule, line in sorted(actual - expected):
                print(f"  unexpected: [{rule}] at line {line}", file=sys.stderr)
    print(f"self-test: {len(fixtures)} fixtures, {failures} failures")
    return 1 if failures else 0


# --- guard the guard --------------------------------------------------------

INJECTIONS = [
    ("wall-clock",
     "\nstatic const long lint_probe_ns = "
     "std::chrono::steady_clock::now().time_since_epoch().count();\n"),
    ("unordered-container",
     "\nstatic int lint_probe_sum(const std::unordered_map<int, int>& m) {\n"
     "  int s = 0;\n"
     "  for (const auto& [k, v] : m) s += k * v;\n"
     "  return s;\n"
     "}\n"),
]


def inject_test(target):
    """Prove the linter still bites: `target` must be clean as checked in,
    and appending each seeded violation must produce that rule."""
    target = Path(target)
    findings = []
    lint_file(target, findings)
    if findings:
        print(f"inject-test: {target} is expected to be clean but is not:",
              file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    original = target.read_text(encoding="utf-8")
    failures = 0
    with tempfile.TemporaryDirectory(prefix="lint_inject_") as tmp:
        for rule, snippet in INJECTIONS:
            probe = Path(tmp) / target.name
            probe.write_text(original + snippet, encoding="utf-8")
            probe_findings = []
            lint_file(probe, probe_findings)
            if not any(f.rule == rule for f in probe_findings):
                failures += 1
                print(f"inject-test FAIL: seeded {rule} violation in "
                      f"{target.name} was not detected", file=sys.stderr)
    if not failures:
        print(f"inject-test: {target.name} clean; "
              f"{len(INJECTIONS)} seeded violations all detected")
    return 1 if failures else 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("roots", nargs="*", help="files/directories to lint "
                        "(default: src/ relative to the repo root)")
    parser.add_argument("--nolint-scan", nargs="*", default=[],
                        metavar="ROOT", help="extra roots checked only for "
                        "NOLINT hygiene")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--inject-test", metavar="FILE")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    if args.self_test:
        return self_test(Path(__file__).resolve().parent / "lint_fixtures")
    if args.inject_test:
        return inject_test(args.inject_test)

    roots = args.roots or [repo_root / "src"]
    try:
        findings = lint_roots(roots, args.nolint_scan)
    except FileNotFoundError as err:
        print(f"lint_determinism: {err}", file=sys.stderr)
        return 2
    for f in findings:
        print(f)
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
