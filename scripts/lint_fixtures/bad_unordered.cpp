// lint-fixture expect: unordered-container@5 unordered-container@7 unordered-container@11 unordered-container@12
// Hash containers: iteration order is a function of the hasher and the
// library, not of the inputs — banned in result-producing code.
#include <string>
#include <unordered_map>

static std::unordered_map<int, double> g_slack;

namespace fixture {

std::unordered_set<std::string> names();
int count(const std::unordered_multimap<int, int>& m) {
  int n = 0;
  for (const auto& kv : m) n += kv.second;
  return n;
}

}  // namespace fixture
