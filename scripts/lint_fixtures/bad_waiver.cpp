// lint-fixture expect: waiver-syntax@8 wall-clock@8 waiver-syntax@10 wall-clock@10 waiver-unused@13
// Waiver hygiene: unknown rules, missing reasons, and waivers that
// suppress nothing are all errors — the waiver list cannot rot.
#include <chrono>

namespace fixture {

long a() { return clock(); }  // lint:allow(wallclock): typo'd rule name

long b() { return clock(); }  // lint:allow(wall-clock)

// The next line is clean, so this waiver is stale and must be removed.
// lint:allow(unordered-container): left over from a deleted cache
int c() { return 3; }

}  // namespace fixture
