// lint-fixture expect: pointer-key@8 pointer-key@10 pointer-key@12
// Ordered containers keyed by pointer: iteration order follows the
// allocator's addresses, which vary run to run and under ASLR.
#include <map>
#include <set>

struct Node;
static std::map<Node*, int> g_rank;

std::set<const Node*> visited();

using EdgeWeights = std::multimap<Node *, double>;
