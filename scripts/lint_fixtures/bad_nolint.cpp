// lint-fixture expect: nolint@6 nolint@8 nolint@10 nolint@12 nolint@13
// clang-tidy suppression hygiene: every suppression names its check and
// carries a reason; blanket and block suppressions are banned.

int ok() { return 1; }  // NOLINT(readability-magic-numbers): fixture example
int blanket() { return 2; }  // NOLINT

int unreasoned() { return 3; }  // NOLINT(bugprone-branch-clone)

// NOLINTNEXTLINE
int next_blanket() { return 4; }
// NOLINTBEGIN(bugprone-branch-clone)
// NOLINTEND(bugprone-branch-clone)
