// lint-fixture expect: waiver-unused@4
// In scope (src/serve/ path) and well-formed, but the file never reads a
// clock — a file waiver that suppresses nothing is stale and must go.
// lint:allow-file(wall-clock): nothing here actually reads a clock

int pure() { return 42; }
