// lint-fixture expect: clean
// File-scoped waiver inside its allowed scope: this fixture lives under a
// src/serve/ path fragment, where the scoped policy honours a wall-clock
// allow-file for the whole translation unit — the serve daemon reports
// request latency in its response envelope, which is measured wall time
// by definition and never feeds a schedule.
// lint:allow-file(wall-clock): latency envelope fields, not schedule inputs
#include <chrono>

namespace fixture {

double first_read() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

double second_read() {
  // Covered by the same file waiver — no per-line waiver needed.
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace fixture
