// lint-fixture expect: wall-clock@8 wall-clock@9 wall-clock@10 wall-clock@11
// Wall-clock reads: schedules must be a function of inputs, not timing.
#include <chrono>
#include <ctime>

namespace fixture {

double a() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
long b() { return std::time(nullptr); }
long c() { return time(nullptr); }
long d() { return clock(); }

}  // namespace fixture
