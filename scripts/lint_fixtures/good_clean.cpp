// lint-fixture expect: clean
// Deterministic code the linter must accept: ordered containers with
// value keys, seeded <random> engines, arithmetic on named times.
#include <map>
#include <random>
#include <set>
#include <vector>

namespace fixture {

int deterministic(int seed) {
  std::map<int, int> by_id;          // ordered, value-keyed: fine
  std::set<long> finish_times;       // fine
  std::mt19937_64 rng(seed);         // seeded engine: fine
  std::vector<int> xs(4);
  // Mentioning unordered_map or time() in a comment is not a finding,
  // and neither is a string: const char* s = "call time() later";
  int total_time = 0;                // identifier containing 'time': fine
  for (int x : xs) total_time += x + static_cast<int>(rng() % 7);
  by_id[seed] = total_time;
  finish_times.insert(total_time);
  return by_id.begin()->second;
}

}  // namespace fixture
