// lint-fixture expect: waiver-scope@7 wall-clock@12 waiver-syntax@14 waiver-syntax@16 waiver-scope@18
// File-scoped waiver hygiene: allow-file is only honoured where the
// scoped policy lists the (rule, path) pair. This fixture is outside
// src/serve/, so the wall-clock allow-file is rejected, the clock read
// below still counts, and malformed allow-files are errors like any
// other waiver.
// lint:allow-file(wall-clock): out of scope here, must not suppress
#include <chrono>

double read_clock() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
// lint:allow-file(no-such-rule): unknown rules are waiver-syntax errors

// lint:allow-file(unordered-container)

// lint:allow-file(pointer-key): no scope lists pointer-key, so waiver-scope
