// lint-fixture expect: clean
// Both waiver placements: trailing on the flagged line, and on a
// comment-only line immediately above it.
#include <chrono>
#include <ctime>

namespace fixture {

double progress_eta() {
  // lint:allow(wall-clock): progress meter display only, never a result
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

long span_open() {
  return std::clock();  // lint:allow(wall-clock): trace timestamp, display only
}

}  // namespace fixture
