// lint-fixture expect: random@9 random@10 random@11 random@14
// Global-state and hardware randomness: tie-breaks must come from the
// scenario's derived seed, never from process-global or entropy sources.
#include <cstdlib>
#include <random>

namespace fixture {

void seed_it(unsigned s) { srand(s); }
int draw() { return std::rand() % 7; }
int draw2() { return rand(); }

unsigned entropy() {
  std::random_device rd;
  return rd();
}

}  // namespace fixture
