#!/usr/bin/env bash
# Fail on dead relative links in the repo's markdown docs.
#
# Scans README.md and docs/*.md for inline markdown links `[text](target)`
# and verifies that every relative target (optionally with a #fragment)
# exists on disk, resolved against the linking file's directory.
# External (scheme://), mailto: and pure-fragment links are ignored.
#
#   $ scripts/check_docs_links.sh        # from the repo root
set -u

cd "$(dirname "$0")/.." || exit 1

status=0
for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Inline links only; reference-style links are not used in this repo.
  # `grep -o` pulls each (target) out even with several links per line.
  while IFS= read -r target; do
    case "$target" in
      *://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link in $doc: ($target) -> $dir/$path does not exist"
      status=1
    fi
  done < <(grep -o '\](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$status" -eq 0 ]; then
  echo "docs link check OK"
fi
exit "$status"
