#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by obs::Tracer.

Checks that the file is what Perfetto / chrome://tracing will accept:

  * the document parses as JSON and has a "traceEvents" array;
  * every event carries the required keys (name, ph, pid, tid), and
    complete events ("ph":"X") also carry ts and dur;
  * timestamps are non-negative, durations are non-negative, and the
    non-metadata events appear sorted by start time (obs::Tracer sorts
    on export — a regression here breaks Perfetto's track layout);
  * at least one span is present (an empty trace from an instrumented
    run means the hooks were never wired through).

Usage: scripts/check_trace.py TRACE.json [TRACE2.json ...]

Exits non-zero with a diagnostic on the first violation. Stdlib only.
"""

import json
import sys

REQUIRED_KEYS = ("name", "ph", "pid", "tid")


def fail(path, message):
    print(f"check_trace: {path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(path, f"cannot load JSON: {exc}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, 'missing top-level "traceEvents" object key')
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(path, '"traceEvents" is not an array')

    spans = 0
    last_ts = None
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(path, f"event {i} is not an object")
        for key in REQUIRED_KEYS:
            if key not in e:
                fail(path, f"event {i} ({e.get('name')!r}) lacks {key!r}")
        ph = e["ph"]
        if ph == "M":
            continue  # metadata events have no timeline position
        if "ts" not in e:
            fail(path, f"event {i} ({e['name']!r}) lacks 'ts'")
        ts = e["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(path, f"event {i} ({e['name']!r}) has bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(path, f"event {i} ({e['name']!r}) ts {ts} < previous "
                       f"{last_ts}: events not sorted by start time")
        last_ts = ts
        if ph == "X":
            spans += 1
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(path, f"event {i} ({e['name']!r}) has bad dur {dur!r}")

    if spans == 0:
        fail(path, "no complete events ('ph':'X') — nothing was traced")
    print(f"check_trace: {path}: OK ({len(events)} events, {spans} spans)")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
